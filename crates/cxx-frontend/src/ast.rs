//! AST for the C++ subset the Amplify pre-processor understands.
//!
//! Every node carries the [`Span`] of its original text. Constructs outside
//! the subset are preserved as `Raw` spans — the rewriter copies them through
//! verbatim, exactly like the pattern-matching pre-processor of the paper.

use crate::source::SourceFile;
use crate::span::Span;

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    pub file: SourceFile,
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Iterate over all class definitions, including those nested in
    /// namespaces.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a ClassDef>) {
            for item in items {
                match item {
                    Item::Class(c) => out.push(c),
                    Item::Namespace(ns) => walk(&ns.items, out),
                    _ => {}
                }
            }
        }
        let mut v = Vec::new();
        walk(&self.items, &mut v);
        v.into_iter()
    }

    /// Find a class by name (first match wins).
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes().find(|c| c.name == name)
    }

    /// Iterate over all function definitions with bodies, including
    /// out-of-line method definitions and functions in namespaces.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a FunctionDef>) {
            for item in items {
                match item {
                    Item::Function(f) => out.push(f),
                    Item::Namespace(ns) => walk(&ns.items, out),
                    _ => {}
                }
            }
        }
        let mut v = Vec::new();
        walk(&self.items, &mut v);
        v.into_iter()
    }

    /// All `#include` directives in order of appearance.
    pub fn includes(&self) -> impl Iterator<Item = &IncludeDirective> {
        self.items.iter().filter_map(|i| match i {
            Item::Include(inc) => Some(inc),
            _ => None,
        })
    }

    /// Bytes covered by top-level items the parser kept as raw text
    /// (templates, unknown declarations, recovered garbage). A measure of
    /// how much of the file is outside the amplifiable subset.
    pub fn unparsed_bytes(&self) -> u32 {
        fn walk(items: &[Item]) -> u32 {
            items
                .iter()
                .map(|i| match i {
                    Item::Raw(s) => s.len(),
                    Item::Namespace(ns) => walk(&ns.items),
                    _ => 0,
                })
                .sum()
        }
        walk(&self.items)
    }

    /// Fraction of the file's bytes in unparsed top-level items, in
    /// `[0, 1]`.
    pub fn unparsed_fraction(&self) -> f64 {
        if self.file.is_empty() {
            0.0
        } else {
            self.unparsed_bytes() as f64 / self.file.len() as f64
        }
    }
}

/// Top-level item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `#include` directive (recorded so generated headers can be inserted
    /// after the last include).
    Include(IncludeDirective),
    /// Any other preprocessor directive.
    Directive(Span),
    /// A class or struct definition.
    Class(ClassDef),
    /// A free function or an out-of-line method definition with a body.
    Function(FunctionDef),
    /// `namespace N { ... }`.
    Namespace(NamespaceDef),
    /// Anything the parser did not interpret (declarations, templates,
    /// globals, ...). Preserved verbatim.
    Raw(Span),
}

impl Item {
    /// The span of this item in the original source.
    pub fn span(&self) -> Span {
        match self {
            Item::Include(i) => i.span,
            Item::Directive(s) => *s,
            Item::Class(c) => c.span,
            Item::Function(f) => f.span,
            Item::Namespace(n) => n.span,
            Item::Raw(s) => *s,
        }
    }
}

/// An `#include "..."` or `#include <...>` directive.
#[derive(Debug, Clone)]
pub struct IncludeDirective {
    /// The include path without quotes/brackets.
    pub path: String,
    /// True for `<...>` form.
    pub system: bool,
    pub span: Span,
}

/// `namespace N { ... }`.
#[derive(Debug, Clone)]
pub struct NamespaceDef {
    pub name: String,
    pub items: Vec<Item>,
    pub span: Span,
}

/// Access control levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Public,
    Private,
    Protected,
}

/// A class or struct definition.
#[derive(Debug, Clone)]
pub struct ClassDef {
    pub name: String,
    pub is_struct: bool,
    /// Base class names (access specifiers dropped).
    pub bases: Vec<String>,
    pub members: Vec<Member>,
    /// Whole definition including the trailing `;`.
    pub span: Span,
    /// Offset of the opening `{`.
    pub lbrace: u32,
    /// Offset of the closing `}`.
    pub rbrace: u32,
}

impl ClassDef {
    /// Data members (fields) of this class.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Field(f) => Some(f),
            _ => None,
        })
    }

    /// Non-static pointer-typed data members — the candidates for shadow
    /// pointers.
    pub fn pointer_fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.fields().filter(|f| !f.is_static && f.ty.pointers > 0 && f.array.is_none())
    }

    /// Methods defined or declared in the class body.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDef> {
        self.members.iter().filter_map(|m| match m {
            Member::Method(f) => Some(f),
            _ => None,
        })
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields().find(|f| f.name == name)
    }

    /// True if the class already declares `operator new` (the pre-processor
    /// must respect it and not generate another one — §3.2).
    pub fn has_operator_new(&self) -> bool {
        self.methods().any(|m| matches!(&m.kind, MethodKind::Operator(op) if op == "new"))
    }

    /// True if the class already declares `operator delete`.
    pub fn has_operator_delete(&self) -> bool {
        self.methods().any(|m| matches!(&m.kind, MethodKind::Operator(op) if op == "delete"))
    }

    /// True if the class declares a destructor.
    pub fn has_destructor(&self) -> bool {
        self.methods().any(|m| matches!(m.kind, MethodKind::Dtor))
    }

    /// Constructors declared in the class body.
    pub fn constructors(&self) -> impl Iterator<Item = &MethodDef> {
        self.methods().filter(|m| matches!(m.kind, MethodKind::Ctor))
    }
}

/// A member of a class body.
#[derive(Debug, Clone)]
pub enum Member {
    Field(FieldDecl),
    Method(MethodDef),
    /// `public:`, `private:`, `protected:`.
    Access(Access, Span),
    /// Anything else (nested types, friends, typedefs, ...).
    Raw(Span),
}

/// A single declared data member. `int a, b;` produces two `FieldDecl`s
/// sharing the statement span.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub ty: TypeRef,
    pub name: String,
    pub is_static: bool,
    /// `Some(span_of_brackets_contents)` for `char buf[16]`; `None`
    /// otherwise.
    pub array: Option<Span>,
    /// Span of the whole declaration statement (shared by grouped
    /// declarators).
    pub span: Span,
}

impl FieldDecl {
    /// The conventional shadow-field name the pre-processor generates
    /// (`left` → `leftShadow`), as in the paper's Figure in §3.2.
    pub fn shadow_name(&self) -> String {
        format!("{}Shadow", self.name)
    }
}

/// A (possibly qualified) type reference: `const std::string*`,
/// `unsigned long`, `Child*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeRef {
    /// Qualified name with `::` separators; builtin multi-keyword types are
    /// joined with single spaces (`unsigned long`).
    pub name: String,
    pub is_const: bool,
    /// Number of `*`s.
    pub pointers: u8,
    pub is_ref: bool,
    /// Template argument list text (including angle brackets), if any.
    pub template_args: Option<Span>,
    pub span: Span,
}

impl TypeRef {
    /// A simple named type with no qualifiers.
    pub fn named(name: &str, span: Span) -> Self {
        TypeRef {
            name: name.to_string(),
            is_const: false,
            pointers: 0,
            is_ref: false,
            template_args: None,
            span,
        }
    }

    /// True for builtin scalar types (`char`, `unsigned long`, ...) — the
    /// "data types" of the paper's BGw extension (§5.2).
    pub fn is_builtin(&self) -> bool {
        self.name.split(' ').all(|w| {
            matches!(
                w,
                "void"
                    | "bool"
                    | "char"
                    | "short"
                    | "int"
                    | "long"
                    | "float"
                    | "double"
                    | "signed"
                    | "unsigned"
            )
        })
    }
}

/// What kind of method a [`MethodDef`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodKind {
    /// Constructor (name equals the class name).
    Ctor,
    /// Destructor (`~Name`).
    Dtor,
    /// `operator X` — the string is the operator text (`new`, `delete`,
    /// `new[]`, `=`, `==`, ...).
    Operator(String),
    /// Ordinary named method or free function.
    Normal,
}

/// One entry of a constructor initializer list: `member(args)` or
/// `member{args}`. Base-class initializers take the same shape (the
/// "member" is then a type name; consumers filter by field lookup).
#[derive(Debug, Clone)]
pub struct CtorInit {
    pub member: String,
    /// The initializer parsed as a `new` expression, when it is exactly
    /// one (`left(new Child(...))`) — the shape Amplify rewrites.
    pub new_expr: Option<NewExpr>,
    /// Whole entry span (`member(...)`).
    pub span: Span,
}

/// A method (inline in a class body, or out-of-line `T C::f(...) {...}`),
/// or a free function.
#[derive(Debug, Clone)]
pub struct MethodDef {
    pub name: String,
    pub kind: MethodKind,
    /// For out-of-line definitions: the class the method belongs to.
    /// `None` for inline members (the enclosing [`ClassDef`] is implied) and
    /// free functions.
    pub qualifier: Option<String>,
    pub is_virtual: bool,
    pub is_static: bool,
    /// Span of the parameter list including parentheses.
    pub params: Span,
    /// Constructor initializer list span (`: a(1), b(2)`), if present.
    pub init_list: Option<Span>,
    /// Parsed initializer-list entries (constructors only).
    pub ctor_inits: Vec<CtorInit>,
    /// The body, if this is a definition; `None` for pure declarations.
    pub body: Option<Block>,
    pub span: Span,
}

/// Alias: top-level function definitions reuse the method representation.
pub type FunctionDef = MethodDef;

impl MethodDef {
    /// True if this defines (rather than merely declares) the function.
    pub fn is_definition(&self) -> bool {
        self.body.is_some()
    }
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

/// A statement. The parser recognizes the patterns the Amplify
/// transformations need and falls back to `Raw` for anything else.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `delete x;` or `delete[] x;`.
    Delete(DeleteStmt),
    /// An expression statement (recognized shapes only — see [`Expr`]).
    Expr(Expr, Span),
    /// A local declaration with optional initializer:
    /// `Child* c = new Child(1);`.
    Decl(LocalDecl),
    /// `return expr;` / `return;`.
    Return(Option<Expr>, Span),
    /// `if (...) stmt [else stmt]` — condition kept as raw text.
    If(IfStmt),
    /// `while (...) stmt`.
    While(LoopStmt),
    /// `for (...;...;...) stmt`.
    For(LoopStmt),
    /// `do stmt while (...);`.
    DoWhile(LoopStmt),
    /// `switch (...) { ... }` — condition raw, body structured (case
    /// labels appear as raw statements inside the block).
    Switch(LoopStmt),
    /// A nested `{ ... }` block.
    Block(Block),
    /// Anything else, preserved verbatim.
    Raw(Span),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Delete(d) => d.span,
            Stmt::Expr(_, s) => *s,
            Stmt::Decl(d) => d.span,
            Stmt::Return(_, s) => *s,
            Stmt::If(i) => i.span,
            Stmt::While(l) | Stmt::For(l) | Stmt::DoWhile(l) | Stmt::Switch(l) => l.span,
            Stmt::Block(b) => b.span,
            Stmt::Raw(s) => *s,
        }
    }
}

/// `delete x;` / `delete[] x;`.
#[derive(Debug, Clone)]
pub struct DeleteStmt {
    pub is_array: bool,
    pub target: Expr,
    pub span: Span,
}

/// A local variable declaration statement.
#[derive(Debug, Clone)]
pub struct LocalDecl {
    pub ty: TypeRef,
    pub name: String,
    pub init: Option<Expr>,
    pub span: Span,
}

/// `if (...) ... [else ...]`.
#[derive(Debug, Clone)]
pub struct IfStmt {
    /// Condition text including parentheses.
    pub cond: Span,
    pub then_branch: Box<Stmt>,
    pub else_branch: Option<Box<Stmt>>,
    pub span: Span,
}

/// Shared shape for `while` / `for` / `do-while`.
#[derive(Debug, Clone)]
pub struct LoopStmt {
    /// Loop header text including parentheses (condition or for-clauses).
    pub header: Span,
    pub body: Box<Stmt>,
    pub span: Span,
}

/// An expression. Only the shapes the transformations pattern-match on are
/// structured; everything else is `Raw`.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `new T(args)`, `new T[len]`, `new (place) T(args)`.
    New(NewExpr),
    /// `lhs = rhs`.
    Assign(AssignExpr),
    /// An lvalue path: `x`, `this->x`, `a.b->c`.
    Path(PathExpr),
    /// A call whose callee is a path: `f(a, b)`, `obj->m(x)`. Arguments are
    /// kept as raw text.
    Call(CallExpr),
    /// Integer literal (useful for recognizing `= 0` style inits).
    Int(i64, Span),
    /// Anything else, preserved verbatim.
    Raw(Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::New(n) => n.span,
            Expr::Assign(a) => a.span,
            Expr::Path(p) => p.span,
            Expr::Call(c) => c.span,
            Expr::Int(_, s) => *s,
            Expr::Raw(s) => *s,
        }
    }

    /// If this expression is a path, return it.
    pub fn as_path(&self) -> Option<&PathExpr> {
        match self {
            Expr::Path(p) => Some(p),
            _ => None,
        }
    }
}

/// A `new` expression.
#[derive(Debug, Clone)]
pub struct NewExpr {
    /// Placement argument list contents (without parens), if present.
    pub placement: Option<Span>,
    pub ty: TypeRef,
    /// Constructor argument list contents (without parens), if present.
    pub ctor_args: Option<Span>,
    /// Array length expression text for `new T[len]`.
    pub array_len: Option<Span>,
    pub span: Span,
}

impl NewExpr {
    /// True for `new T[...]`.
    pub fn is_array(&self) -> bool {
        self.array_len.is_some()
    }
}

/// `lhs = rhs` (simple assignment only; compound assignments stay raw).
#[derive(Debug, Clone)]
pub struct AssignExpr {
    pub lhs: Box<Expr>,
    pub rhs: Box<Expr>,
    pub span: Span,
}

/// An lvalue path. `this->a.b->c` becomes
/// `{ this_prefix: true, segments: ["a", "b", "c"] }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// True if the path begins with `this->`.
    pub this_prefix: bool,
    pub segments: Vec<String>,
    pub span: Span,
}

impl PathExpr {
    /// If the path plausibly denotes a direct member of the enclosing class
    /// (`x` or `this->x`), return the member name.
    ///
    /// The pre-processor, like the paper's, only rewrites accesses to the
    /// *own* members of the class whose method it is transforming.
    pub fn as_own_member(&self) -> Option<&str> {
        if self.segments.len() == 1 {
            Some(&self.segments[0])
        } else {
            None
        }
    }
}

/// A call with a path callee.
#[derive(Debug, Clone)]
pub struct CallExpr {
    pub callee: PathExpr,
    /// Argument list contents (without parens).
    pub args: Span,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(a: u32, b: u32) -> Span {
        Span::new(a, b)
    }

    #[test]
    fn shadow_name_convention() {
        let f = FieldDecl {
            ty: TypeRef::named("Child", sp(0, 5)),
            name: "left".into(),
            is_static: false,
            array: None,
            span: sp(0, 12),
        };
        assert_eq!(f.shadow_name(), "leftShadow");
    }

    #[test]
    fn builtin_detection() {
        let mut t = TypeRef::named("unsigned long", sp(0, 13));
        assert!(t.is_builtin());
        t.name = "Engine".into();
        assert!(!t.is_builtin());
        t.name = "std::string".into();
        assert!(!t.is_builtin());
    }

    #[test]
    fn own_member_paths() {
        let p = PathExpr { this_prefix: true, segments: vec!["left".into()], span: sp(0, 10) };
        assert_eq!(p.as_own_member(), Some("left"));
        let q = PathExpr {
            this_prefix: false,
            segments: vec!["car".into(), "engine".into()],
            span: sp(0, 11),
        };
        assert_eq!(q.as_own_member(), None);
    }
}
