//! Token definitions for the C++ lexer.

use crate::span::Span;

/// A lexed token: a kind plus the span of its original text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Slice this token's text out of the source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        self.span.slice(src)
    }
}

/// Kinds of token. Comments and whitespace are *not* emitted — the span-based
/// rewriter preserves them implicitly. Preprocessor directives are emitted as
/// a single [`TokenKind::Directive`] token covering the whole logical line so
/// the parser can record `#include`s and skip the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    Ident,
    Keyword(Kw),
    IntLit,
    FloatLit,
    CharLit,
    StrLit,
    Directive,
    Punct(Punct),
    /// A byte sequence the lexer could not interpret (emitted one byte at a
    /// time so the parser can resynchronize).
    Unknown,
    Eof,
}

/// C++ keywords the parser cares about. Identifiers that happen to be other
/// C++ keywords (e.g. `mutable`) simply lex as [`TokenKind::Ident`]; the
/// tolerant parser treats them as raw text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    Class,
    Struct,
    Union,
    Enum,
    Public,
    Private,
    Protected,
    Virtual,
    Static,
    Const,
    Inline,
    Friend,
    Typedef,
    Extern,
    Template,
    Typename,
    Namespace,
    Using,
    Operator,
    New,
    Delete,
    This,
    Sizeof,
    Return,
    If,
    Else,
    While,
    For,
    Do,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Goto,
    Void,
    Bool,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Signed,
    Unsigned,
    True,
    False,
    Nullptr,
}

impl Kw {
    /// Map an identifier to a keyword, if it is one. (Not `FromStr`: this
    /// is infallible-by-`Option`, not error-carrying.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "class" => Kw::Class,
            "struct" => Kw::Struct,
            "union" => Kw::Union,
            "enum" => Kw::Enum,
            "public" => Kw::Public,
            "private" => Kw::Private,
            "protected" => Kw::Protected,
            "virtual" => Kw::Virtual,
            "static" => Kw::Static,
            "const" => Kw::Const,
            "inline" => Kw::Inline,
            "friend" => Kw::Friend,
            "typedef" => Kw::Typedef,
            "extern" => Kw::Extern,
            "template" => Kw::Template,
            "typename" => Kw::Typename,
            "namespace" => Kw::Namespace,
            "using" => Kw::Using,
            "operator" => Kw::Operator,
            "new" => Kw::New,
            "delete" => Kw::Delete,
            "this" => Kw::This,
            "sizeof" => Kw::Sizeof,
            "return" => Kw::Return,
            "if" => Kw::If,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "do" => Kw::Do,
            "switch" => Kw::Switch,
            "case" => Kw::Case,
            "default" => Kw::Default,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "goto" => Kw::Goto,
            "void" => Kw::Void,
            "bool" => Kw::Bool,
            "char" => Kw::Char,
            "short" => Kw::Short,
            "int" => Kw::Int,
            "long" => Kw::Long,
            "float" => Kw::Float,
            "double" => Kw::Double,
            "signed" => Kw::Signed,
            "unsigned" => Kw::Unsigned,
            "true" => Kw::True,
            "false" => Kw::False,
            "nullptr" => Kw::Nullptr,
            _ => return None,
        })
    }

    /// True for keywords that can start or continue a builtin type name
    /// (`unsigned long long`, `const char`, ...).
    pub fn is_builtin_type(self) -> bool {
        matches!(
            self,
            Kw::Void
                | Kw::Bool
                | Kw::Char
                | Kw::Short
                | Kw::Int
                | Kw::Long
                | Kw::Float
                | Kw::Double
                | Kw::Signed
                | Kw::Unsigned
        )
    }
}

/// Punctuation and operators. Multi-character operators are lexed greedily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Arrow,
    ArrowStar,
    Dot,
    DotStar,
    Star,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    Bang,
    Plus,
    PlusPlus,
    Minus,
    MinusMinus,
    Slash,
    Percent,
    Lt,
    LtLt,
    Le,
    Gt,
    GtGt,
    Ge,
    Eq,
    EqEq,
    Ne,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    LtLtEq,
    GtGtEq,
    Question,
    Ellipsis,
}

impl Punct {
    /// The literal text of this punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            ColonColon => "::",
            Arrow => "->",
            ArrowStar => "->*",
            Dot => ".",
            DotStar => ".*",
            Star => "*",
            Amp => "&",
            AmpAmp => "&&",
            Pipe => "|",
            PipePipe => "||",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Plus => "+",
            PlusPlus => "++",
            Minus => "-",
            MinusMinus => "--",
            Slash => "/",
            Percent => "%",
            Lt => "<",
            LtLt => "<<",
            Le => "<=",
            Gt => ">",
            GtGt => ">>",
            Ge => ">=",
            Eq => "=",
            EqEq => "==",
            Ne => "!=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            LtLtEq => "<<=",
            GtGtEq => ">>=",
            Question => "?",
            Ellipsis => "...",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Kw::from_str("class"), Some(Kw::Class));
        assert_eq!(Kw::from_str("new"), Some(Kw::New));
        assert_eq!(Kw::from_str("mutable"), None);
        assert_eq!(Kw::from_str(""), None);
    }

    #[test]
    fn builtin_type_keywords() {
        assert!(Kw::Unsigned.is_builtin_type());
        assert!(Kw::Char.is_builtin_type());
        assert!(!Kw::Class.is_builtin_type());
        assert!(!Kw::New.is_builtin_type());
    }

    #[test]
    fn punct_text_round_trip() {
        assert_eq!(Punct::Arrow.as_str(), "->");
        assert_eq!(Punct::LtLtEq.as_str(), "<<=");
        assert_eq!(Punct::Ellipsis.as_str(), "...");
    }
}
