//! Byte-offset spans into a source file.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans are the currency of the whole front end: the parser attaches them to
/// every node it recognizes, and the [`crate::rewrite::Rewriter`] edits the
/// original text through them. Offsets are `u32` — single translation units
/// beyond 4 GiB are not a realistic input for a pre-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// Create a span; panics in debug builds if `start > end`.
    #[inline]
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "inverted span {start}..{end}");
        Span { start, end }
    }

    /// The empty span at a given offset (used for pure insertions).
    #[inline]
    pub fn at(offset: u32) -> Self {
        Span { start: offset, end: offset }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True if the span covers no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    #[inline]
    pub fn to(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// True if `self` fully contains `other`.
    #[inline]
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True if the two spans share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Index into a source string.
    #[inline]
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start as usize..self.end as usize]
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let a = Span::new(2, 5);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::at(7).is_empty());
    }

    #[test]
    fn union_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(2, 12));
        assert_eq!(b.to(a), Span::new(2, 12));
    }

    #[test]
    fn containment_and_overlap() {
        let outer = Span::new(0, 10);
        let inner = Span::new(3, 7);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(outer.overlaps(inner));
        // Touching spans do not overlap (half-open ranges).
        assert!(!Span::new(0, 5).overlaps(Span::new(5, 9)));
    }

    #[test]
    fn slicing() {
        let text = "hello world";
        assert_eq!(Span::new(6, 11).slice(text), "world");
    }
}
