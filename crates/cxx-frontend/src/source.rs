//! Source file representation with line/column mapping.

use crate::span::Span;
use std::sync::Arc;

/// An immutable source file plus a precomputed line-start table.
#[derive(Debug, Clone)]
pub struct SourceFile {
    inner: Arc<SourceInner>,
}

#[derive(Debug)]
struct SourceInner {
    name: String,
    text: String,
    /// Byte offsets at which each line begins; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

/// 1-based line/column position, as editors display it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl SourceFile {
    /// Build a source file, computing the line table.
    pub fn new(name: &str, text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            inner: Arc::new(SourceInner {
                name: name.to_string(),
                text: text.to_string(),
                line_starts,
            }),
        }
    }

    /// File name as given to [`SourceFile::new`].
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Full source text.
    pub fn text(&self) -> &str {
        &self.inner.text
    }

    /// Length of the text in bytes.
    pub fn len(&self) -> u32 {
        self.inner.text.len() as u32
    }

    /// True if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.text.is_empty()
    }

    /// Slice the text by span.
    pub fn slice(&self, span: Span) -> &str {
        span.slice(&self.inner.text)
    }

    /// Map a byte offset to a 1-based line/column.
    ///
    /// Columns are byte-based (sufficient for diagnostics over ASCII-heavy
    /// C++ sources).
    pub fn line_col(&self, offset: u32) -> LineCol {
        let starts = &self.inner.line_starts;
        let line_idx = match starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol { line: line_idx as u32 + 1, col: offset - starts[line_idx] + 1 }
    }

    /// Byte span of the (1-based) line containing `offset`, excluding the
    /// trailing newline.
    pub fn line_span(&self, offset: u32) -> Span {
        let starts = &self.inner.line_starts;
        let line_idx = match starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = starts[line_idx];
        let end =
            starts.get(line_idx + 1).map(|&next| next.saturating_sub(1)).unwrap_or(self.len());
        Span::new(start, end)
    }

    /// Human-readable `file:line:col` for an offset.
    pub fn describe(&self, offset: u32) -> String {
        let lc = self.line_col(offset);
        format!("{}:{}:{}", self.name(), lc.line, lc.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("t.cpp", "ab\ncd\n\nxyz");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_span_excludes_newline() {
        let f = SourceFile::new("t.cpp", "ab\ncd\n\nxyz");
        assert_eq!(f.slice(f.line_span(0)), "ab");
        assert_eq!(f.slice(f.line_span(4)), "cd");
        assert_eq!(f.slice(f.line_span(6)), "");
        assert_eq!(f.slice(f.line_span(8)), "xyz");
    }

    #[test]
    fn describe_format() {
        let f = SourceFile::new("a.h", "x\ny");
        assert_eq!(f.describe(2), "a.h:2:1");
    }

    #[test]
    fn empty_file() {
        let f = SourceFile::new("e.cpp", "");
        assert!(f.is_empty());
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
    }
}
