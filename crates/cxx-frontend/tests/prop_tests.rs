//! Property-based tests for the front end.

use cxx_frontend::rewrite::Rewriter;
use cxx_frontend::source::SourceFile;
use cxx_frontend::span::Span;
use cxx_frontend::{lexer, parse_source};
use proptest::prelude::*;

proptest! {
    /// The lexer must terminate and cover the input for arbitrary bytes
    /// (valid UTF-8 strings).
    #[test]
    fn lexer_never_panics_and_terminates(src in ".{0,400}") {
        let f = SourceFile::new("fuzz.cpp", &src);
        let toks = lexer::lex(&f);
        prop_assert!(!toks.is_empty());
        // Tokens are ordered and within bounds.
        let mut last_end = 0u32;
        for t in &toks {
            prop_assert!(t.span.start <= t.span.end);
            prop_assert!(t.span.end <= f.len());
            prop_assert!(t.span.start >= last_end);
            last_end = t.span.start;
        }
    }

    /// The parser must never panic on arbitrary input.
    #[test]
    fn parser_never_panics(src in ".{0,400}") {
        let _ = parse_source("fuzz.cpp", &src);
    }

    /// The parser must never panic on "C++-shaped" input assembled from
    /// plausible fragments (more likely to reach deep parser paths than
    /// uniform random text).
    #[test]
    fn parser_never_panics_on_cpp_shaped(parts in proptest::collection::vec(
        prop_oneof![
            Just("class A {"), Just("};"), Just("int x;"), Just("Child* p;"),
            Just("void f() {"), Just("}"), Just("delete p;"), Just("delete[] q;"),
            Just("p = new Child(1);"), Just("a = new(b) C();"), Just("if (x)"),
            Just("while (y)"), Just("for (;;)"), Just("return 0;"),
            Just("public:"), Just("virtual ~A();"), Just("A();"),
            Just("operator new(size_t);"), Just("template <class T>"),
            Just("namespace N {"), Just("#include <v>"), Just("("), Just(")"),
            Just("{"), Just("::"), Just("~"), Just(";"), Just("=")
        ], 0..40))
    {
        let src = parts.join("\n");
        let _ = parse_source("fuzz.cpp", &src);
    }

    /// A rewriter with no edits reproduces the input exactly.
    #[test]
    fn rewrite_identity(src in ".{0,400}") {
        let r = Rewriter::new(SourceFile::new("t.cpp", &src));
        prop_assert_eq!(r.apply().unwrap(), src);
    }

    /// Applying disjoint replacements yields output whose length equals
    /// input length plus the net edit delta, and preserves all untouched
    /// bytes in order.
    #[test]
    fn rewrite_length_arithmetic(
        src in "[a-z]{20,80}",
        cuts in proptest::collection::btree_set(0usize..20, 0..6),
        text in "[A-Z]{0,5}",
    ) {
        let f = SourceFile::new("t.cpp", &src);
        let mut r = Rewriter::new(f);
        // Build disjoint 1-byte replacements at distinct even offsets.
        let mut delta: i64 = 0;
        for c in &cuts {
            let off = (c * 2) as u32;
            if off < src.len() as u32 {
                r.replace(Span::new(off, off + 1), text.clone());
                delta += text.len() as i64 - 1;
            }
        }
        let out = r.apply().unwrap();
        prop_assert_eq!(out.len() as i64, src.len() as i64 + delta);
    }

    /// Insertion order at equal offsets is stable (recording order).
    #[test]
    fn insertions_stable(offs in proptest::collection::vec(0u32..10, 1..8)) {
        let src = "0123456789";
        let mut r = Rewriter::new(SourceFile::new("t.cpp", src));
        for (i, &o) in offs.iter().enumerate() {
            r.insert_before(o, format!("[{i}]"));
        }
        let out = r.apply().unwrap();
        // All markers present exactly once.
        for i in 0..offs.len() {
            prop_assert_eq!(out.matches(&format!("[{i}]")).count(), 1);
        }
        // Markers at the same offset appear in recording order.
        for i in 0..offs.len() {
            for j in (i + 1)..offs.len() {
                if offs[i] == offs[j] {
                    let pi = out.find(&format!("[{i}]")).unwrap();
                    let pj = out.find(&format!("[{j}]")).unwrap();
                    prop_assert!(pi < pj);
                }
            }
        }
    }

    /// Parsed class definitions cover their original text: slicing the
    /// class span out of the source must start with `class`/`struct`.
    #[test]
    fn class_spans_anchor_on_keyword(name in "[A-Z][a-z]{1,8}", n_fields in 0usize..5) {
        let fields: String = (0..n_fields)
            .map(|i| format!("    Child* f{i};\n"))
            .collect();
        let src = format!("class {name} {{\n{fields}}};\n");
        let unit = parse_source("t.cpp", &src);
        let c = unit.classes().next().unwrap();
        prop_assert!(unit.file.slice(c.span).starts_with("class"));
        prop_assert_eq!(c.pointer_fields().count(), n_fields);
    }
}
