//! Parser integration tests: the constructs the Amplify transformations
//! depend on must parse into structured AST; everything else must degrade
//! to raw spans without derailing the rest of the file.

use cxx_frontend::ast::*;
use cxx_frontend::parse_source;

fn only_class(src: &str) -> ClassDef {
    let unit = parse_source("t.cpp", src);
    let mut classes: Vec<_> = unit.classes().cloned().collect();
    assert_eq!(classes.len(), 1, "expected exactly one class in {src:?}");
    classes.pop().unwrap()
}

#[test]
fn class_with_pointer_fields() {
    let c = only_class(
        r#"
class Root {
public:
    void use();
private:
    Child* left;
    Child* right;
    int data;
};
"#,
    );
    assert_eq!(c.name, "Root");
    assert!(!c.is_struct);
    let ptrs: Vec<_> = c.pointer_fields().map(|f| f.name.clone()).collect();
    assert_eq!(ptrs, vec!["left", "right"]);
    let data = c.field("data").unwrap();
    assert_eq!(data.ty.name, "int");
    assert_eq!(data.ty.pointers, 0);
}

#[test]
fn struct_and_bases() {
    let c = only_class("struct Wheel : public Part, private Disposable { int radius; };");
    assert!(c.is_struct);
    assert_eq!(c.bases, vec!["Part", "Disposable"]);
}

#[test]
fn multi_declarator_fields() {
    let c = only_class("class C { Child *a, b, *c; int x, y; };");
    let names: Vec<_> = c.fields().map(|f| (f.name.clone(), f.ty.pointers)).collect();
    assert_eq!(
        names,
        vec![
            ("a".to_string(), 1),
            ("b".to_string(), 0),
            ("c".to_string(), 1),
            ("x".to_string(), 0),
            ("y".to_string(), 0)
        ]
    );
}

#[test]
fn array_fields_are_not_pointer_fields() {
    let c = only_class("class C { char buf[256]; char* name; };");
    assert_eq!(c.pointer_fields().count(), 1);
    let buf = c.field("buf").unwrap();
    assert!(buf.array.is_some());
}

#[test]
fn ctor_dtor_and_methods() {
    let c = only_class(
        r#"
class Car {
public:
    Car(int wheels);
    virtual ~Car();
    void drive(int km);
    static Car* make();
};
"#,
    );
    assert_eq!(c.constructors().count(), 1);
    assert!(c.has_destructor());
    let dtor = c.methods().find(|m| m.kind == MethodKind::Dtor).unwrap();
    assert!(dtor.is_virtual);
    let make = c.methods().find(|m| m.name == "make").unwrap();
    assert!(make.is_static);
}

#[test]
fn operator_new_detection() {
    let c = only_class(
        r#"
class Special {
public:
    void* operator new(size_t n);
    void operator delete(void* p);
};
"#,
    );
    assert!(c.has_operator_new());
    assert!(c.has_operator_delete());
}

#[test]
fn class_without_operator_new() {
    let c = only_class("class Plain { int x; };");
    assert!(!c.has_operator_new());
    assert!(!c.has_operator_delete());
}

#[test]
fn operator_assignment_is_not_operator_new() {
    let c = only_class("class C { C& operator=(const C& o); bool operator==(const C& o); };");
    assert!(!c.has_operator_new());
    let ops: Vec<_> = c
        .methods()
        .filter_map(|m| match &m.kind {
            MethodKind::Operator(op) => Some(op.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(ops, vec!["=", "=="]);
}

#[test]
fn inline_method_body_statements() {
    let c = only_class(
        r#"
class Root {
public:
    void clear() {
        delete left;
        count = 0;
    }
private:
    Child* left;
    int count;
};
"#,
    );
    let clear = c.methods().find(|m| m.name == "clear").unwrap();
    let body = clear.body.as_ref().unwrap();
    assert!(matches!(&body.stmts[0], Stmt::Delete(d) if !d.is_array));
}

#[test]
fn delete_statement_shapes() {
    let unit = parse_source(
        "t.cpp",
        r#"
void f() {
    delete p;
    delete[] arr;
    delete this->left;
    delete obj->child;
}
"#,
    );
    let body = unit.functions().next().unwrap().body.as_ref().unwrap();
    let deletes: Vec<&DeleteStmt> = body
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::Delete(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(deletes.len(), 4);
    assert!(!deletes[0].is_array);
    assert!(deletes[1].is_array);
    let p2 = deletes[2].target.as_path().unwrap();
    assert!(p2.this_prefix);
    assert_eq!(p2.as_own_member(), Some("left"));
    let p3 = deletes[3].target.as_path().unwrap();
    assert_eq!(p3.segments, vec!["obj", "child"]);
    assert_eq!(p3.as_own_member(), None);
}

#[test]
fn assignment_from_new() {
    let unit = parse_source("t.cpp", "void f() { left = new Child(1, 2); }");
    let body = unit.functions().next().unwrap().body.as_ref().unwrap();
    match &body.stmts[0] {
        Stmt::Expr(Expr::Assign(a), _) => {
            assert_eq!(a.lhs.as_path().unwrap().as_own_member(), Some("left"));
            match &*a.rhs {
                Expr::New(n) => {
                    assert_eq!(n.ty.name, "Child");
                    assert!(n.placement.is_none());
                    assert!(!n.is_array());
                }
                other => panic!("expected new, got {other:?}"),
            }
        }
        other => panic!("expected assignment, got {other:?}"),
    }
}

#[test]
fn placement_new_is_recognized() {
    let unit = parse_source("t.cpp", "void f() { left = new(leftShadow) Child(); }");
    let body = unit.functions().next().unwrap().body.as_ref().unwrap();
    match &body.stmts[0] {
        Stmt::Expr(Expr::Assign(a), _) => match &*a.rhs {
            Expr::New(n) => {
                let pl = n.placement.unwrap();
                assert_eq!(unit.file.slice(pl), "leftShadow");
            }
            other => panic!("expected new, got {other:?}"),
        },
        other => panic!("expected assignment, got {other:?}"),
    }
}

#[test]
fn array_new_with_length() {
    let unit = parse_source("t.cpp", "void f() { buffer = new char[length * 2]; }");
    let body = unit.functions().next().unwrap().body.as_ref().unwrap();
    match &body.stmts[0] {
        Stmt::Expr(Expr::Assign(a), _) => match &*a.rhs {
            Expr::New(n) => {
                assert!(n.is_array());
                assert_eq!(n.ty.name, "char");
                assert!(n.ty.is_builtin());
                assert_eq!(unit.file.slice(n.array_len.unwrap()), "length * 2");
            }
            other => panic!("expected new, got {other:?}"),
        },
        other => panic!("expected assignment, got {other:?}"),
    }
}

#[test]
fn local_decl_with_new() {
    let unit = parse_source("t.cpp", "void f() { Child* c = new Child(); }");
    let body = unit.functions().next().unwrap().body.as_ref().unwrap();
    match &body.stmts[0] {
        Stmt::Decl(d) => {
            assert_eq!(d.name, "c");
            assert_eq!(d.ty.pointers, 1);
            assert!(matches!(d.init, Some(Expr::New(_))));
        }
        other => panic!("expected decl, got {other:?}"),
    }
}

#[test]
fn out_of_line_method_definitions() {
    let unit = parse_source(
        "t.cpp",
        r#"
Car::Car(int n) : wheels(0) { count = n; }
Car::~Car() { delete wheels; }
void Car::drive(int km) { pos = pos + km; }
Wheel* Car::wheel(int i) { return 0; }
"#,
    );
    let fns: Vec<_> = unit.functions().collect();
    assert_eq!(fns.len(), 4);
    assert_eq!(fns[0].kind, MethodKind::Ctor);
    assert_eq!(fns[0].qualifier.as_deref(), Some("Car"));
    assert!(fns[0].init_list.is_some());
    assert_eq!(fns[1].kind, MethodKind::Dtor);
    assert_eq!(fns[2].name, "drive");
    assert_eq!(fns[2].qualifier.as_deref(), Some("Car"));
    assert_eq!(fns[3].name, "wheel");
}

#[test]
fn ctor_initializer_lists_are_structured() {
    let unit = parse_source(
        "t.cpp",
        r#"
class Root {
public:
    Root(int v) : base(v), left(new Child(v)), count(0), buf{0} {
        use(v);
    }
private:
    Child* left;
    int base;
    int count;
    int buf;
};
Root::Root() : left(new Child(1)), count(7) { }
"#,
    );
    let c = unit.class("Root").unwrap();
    let ctor = c.constructors().next().unwrap();
    let members: Vec<_> = ctor.ctor_inits.iter().map(|i| i.member.clone()).collect();
    assert_eq!(members, vec!["base", "left", "count", "buf"]);
    let left = &ctor.ctor_inits[1];
    let n = left.new_expr.as_ref().expect("structured new in init list");
    assert_eq!(n.ty.name, "Child");
    assert!(ctor.ctor_inits[0].new_expr.is_none());

    // Out-of-line constructor too.
    let out_of_line = unit.functions().next().unwrap();
    assert_eq!(out_of_line.kind, MethodKind::Ctor);
    assert_eq!(out_of_line.ctor_inits.len(), 2);
    assert!(out_of_line.ctor_inits[0].new_expr.is_some());
}

#[test]
fn free_function() {
    let unit = parse_source("t.cpp", "int main() { return 0; }");
    let f = unit.functions().next().unwrap();
    assert_eq!(f.name, "main");
    assert!(f.qualifier.is_none());
}

#[test]
fn includes_are_recorded() {
    let unit =
        parse_source("t.cpp", "#include <vector>\n#include \"car.h\"\n#define N 5\nint x;\n");
    let incs: Vec<_> = unit.includes().collect();
    assert_eq!(incs.len(), 2);
    assert_eq!(incs[0].path, "vector");
    assert!(incs[0].system);
    assert_eq!(incs[1].path, "car.h");
    assert!(!incs[1].system);
}

#[test]
fn namespaces_are_entered() {
    let unit = parse_source(
        "t.cpp",
        "namespace billing { class Cdr { char* buf; }; void f() { delete g; } }",
    );
    assert_eq!(unit.classes().count(), 1);
    assert_eq!(unit.class("Cdr").unwrap().pointer_fields().count(), 1);
    assert_eq!(unit.functions().count(), 1);
}

#[test]
fn templates_are_raw() {
    let unit = parse_source(
        "t.cpp",
        "template <class T> class Vec { T* data; };\nclass Normal { int x; };",
    );
    // The template class must NOT appear as a ClassDef; Normal must.
    assert_eq!(unit.classes().count(), 1);
    assert_eq!(unit.classes().next().unwrap().name, "Normal");
}

#[test]
fn forward_declarations_are_raw() {
    let unit = parse_source("t.cpp", "class Fwd;\nclass Real { int x; };");
    assert_eq!(unit.classes().count(), 1);
    assert_eq!(unit.classes().next().unwrap().name, "Real");
}

#[test]
fn garbage_between_classes_does_not_derail() {
    let unit = parse_source(
        "t.cpp",
        r#"
class A { int x; };
@@ %% utterly unparsable $$ tokens here ;
class B { char* p; };
"#,
    );
    let names: Vec<_> = unit.classes().map(|c| c.name.clone()).collect();
    assert_eq!(names, vec!["A", "B"]);
}

#[test]
fn nested_types_inside_class_are_raw_members() {
    let c = only_class(
        r#"
class Outer {
    enum Color { Red, Green };
    struct Inner { int y; };
    typedef int MyInt;
    Child* p;
};
"#,
    );
    // Only the pointer field is structured.
    assert_eq!(c.fields().count(), 1);
    assert_eq!(c.pointer_fields().next().unwrap().name, "p");
}

#[test]
fn control_flow_bodies_are_structured() {
    let unit = parse_source(
        "t.cpp",
        r#"
void f() {
    if (a) { delete x; } else delete y;
    while (b) delete z;
    for (int i = 0; i < n; i++) { delete w; }
    do { delete v; } while (c);
}
"#,
    );
    let body = unit.functions().next().unwrap().body.clone().unwrap();
    let n = cxx_frontend::visit::count_stmts(&body, |s| matches!(s, Stmt::Delete(_)));
    assert_eq!(n, 5);
}

#[test]
fn switch_bodies_are_structured() {
    let unit = parse_source(
        "t.cpp",
        r#"
void f(int mode) {
    switch (mode) {
    case 0:
        delete a;
        break;
    case 1:
    case 2: {
        delete b;
        break;
    }
    default:
        delete c;
    }
}
"#,
    );
    let body = unit.functions().next().unwrap().body.clone().unwrap();
    let dels = cxx_frontend::visit::count_stmts(&body, |s| matches!(s, Stmt::Delete(_)));
    assert_eq!(dels, 3, "deletes inside switch arms must be visible");
    let switches = cxx_frontend::visit::count_stmts(&body, |s| matches!(s, Stmt::Switch(_)));
    assert_eq!(switches, 1);
}

#[test]
fn qualified_types_in_fields() {
    let c = only_class("class C { std::string* name; Tools::RWCString label; };");
    let name = c.field("name").unwrap();
    assert_eq!(name.ty.name, "std::string");
    assert_eq!(name.ty.pointers, 1);
    let label = c.field("label").unwrap();
    assert_eq!(label.ty.name, "Tools::RWCString");
}

#[test]
fn builtin_multiword_types() {
    let c = only_class("class C { unsigned long count; signed char* bytes; };");
    assert_eq!(c.field("count").unwrap().ty.name, "unsigned long");
    let bytes = c.field("bytes").unwrap();
    assert_eq!(bytes.ty.name, "signed char");
    assert_eq!(bytes.ty.pointers, 1);
    assert!(bytes.ty.is_builtin());
}

#[test]
fn static_fields_excluded_from_pointer_fields() {
    let c = only_class("class C { static Child* shared; Child* own; };");
    let ptrs: Vec<_> = c.pointer_fields().map(|f| f.name.clone()).collect();
    assert_eq!(ptrs, vec!["own"]);
}

#[test]
fn method_bodies_with_raw_statements_survive() {
    let unit = parse_source(
        "t.cpp",
        r#"
void f() {
    int x = a + b * c;
    printf("%d\n", x);
    delete p;
    obj->method(1, 2)->chain();
}
"#,
    );
    let body = unit.functions().next().unwrap().body.clone().unwrap();
    let dels = cxx_frontend::visit::count_stmts(&body, |s| matches!(s, Stmt::Delete(_)));
    assert_eq!(dels, 1);
    assert_eq!(body.stmts.len(), 4);
}

#[test]
fn class_spans_cover_definition() {
    let src = "class A { int x; };";
    let unit = parse_source("t.cpp", src);
    let c = unit.classes().next().unwrap();
    assert_eq!(unit.file.slice(c.span), src);
    assert_eq!(&src[c.lbrace as usize..=c.lbrace as usize], "{");
    assert_eq!(&src[c.rbrace as usize..=c.rbrace as usize], "}");
}

#[test]
fn unparsed_bytes_measures_raw_items() {
    let unit = parse_source("t.cpp", "class A { int x; };");
    assert_eq!(unit.unparsed_bytes(), 0);
    assert_eq!(unit.unparsed_fraction(), 0.0);

    let unit = parse_source("t.cpp", "template <class T> struct V { T* p; };");
    assert!(unit.unparsed_fraction() > 0.9, "whole file is a template");

    let unit = parse_source(
        "t.cpp",
        "namespace n { template <class T> struct V { T* p; }; class A { int x; }; }",
    );
    let f = unit.unparsed_fraction();
    assert!(f > 0.2 && f < 0.8, "mixed namespace: {f}");
}

#[test]
fn empty_source() {
    let unit = parse_source("t.cpp", "");
    assert!(unit.items.is_empty() || unit.items.iter().all(|i| i.span().is_empty()));
}

#[test]
fn bgw_like_component_parses() {
    // A miniature of the BGw shape: parent object owning raw byte buffers.
    let unit = parse_source(
        "bgw.cpp",
        r#"
#include <string.h>

class CdrBuffer {
public:
    CdrBuffer() { buffer = 0; length = 0; }
    ~CdrBuffer() { delete[] buffer; }
    void fill(const char* src, int len) {
        delete[] buffer;
        buffer = new char[len];
        memcpy(buffer, src, len);
        length = len;
    }
private:
    char* buffer;
    int length;
};
"#,
    );
    let c = unit.class("CdrBuffer").unwrap();
    assert_eq!(c.pointer_fields().count(), 1);
    let fill = c.methods().find(|m| m.name == "fill").unwrap();
    let body = fill.body.clone().unwrap();
    let dels =
        cxx_frontend::visit::count_stmts(&body, |s| matches!(s, Stmt::Delete(d) if d.is_array));
    assert_eq!(dels, 1);
}
