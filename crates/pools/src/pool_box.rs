//! [`PoolBox`]: the owned-object handle all pools trade in, backed either
//! by an ordinary heap `Box` or by a slot carved out of a shared slab.
//!
//! The slab half is what makes the fresh-allocation path cheap: instead of
//! one `malloc` per object, a cold pool carves a contiguous slab of N
//! object slots in a single heap call ([`SlabReserve::carve`]) and hands
//! them out one placement-write at a time. Each slot keeps an `Arc` to its
//! [`SlabStorage`], so the slab's backing memory is returned to the system
//! exactly when the last object from it dies — whether that happens via
//! `trim`, an epoch invalidation, a population cap, or plain `drop`. No
//! per-slab bookkeeping is needed anywhere else in the crate: the cap and
//! trim logic count *objects*, and the slab frees itself.
//!
//! `PoolBox<T>` is two words (`NonNull<T>` plus a niche-optimized
//! `Option<Arc<..>>`), behaves like `Box<T>` (`Deref`/`DerefMut`, drops its
//! value), and converts from `Box<T>` at zero cost so existing call sites
//! keep compiling via `impl Into<PoolBox<T>>` on the release paths.

use std::alloc::{alloc, dealloc, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::Arc;

#[cfg(any(debug_assertions, feature = "fault-inject"))]
use crate::guard;

/// Guarded slab-slot layout (debug / `fault-inject` builds only): the value
/// first — so a `NonNull<T>` to the slot *is* a `NonNull<T>` to the value
/// and the release-build pointer math is unchanged — then a canary word
/// keyed on the slot address and a generation tag whose low bit is the
/// live/dead state ([`guard::GEN_LIVE`]) and whose remaining bits count
/// fills, so a stale handle from before a reuse is distinguishable.
#[cfg(any(debug_assertions, feature = "fault-inject"))]
#[repr(C)]
struct GuardSlot<T> {
    value: std::mem::MaybeUninit<T>,
    canary: u64,
    generation: u64,
}

/// Bytes between consecutive slab slots. With the guard compiled out this
/// is exactly `size_of::<T>()` — guarded builds pay for the two guard words
/// per slot, release builds pay nothing.
#[inline]
fn slot_stride<T>() -> usize {
    #[cfg(any(debug_assertions, feature = "fault-inject"))]
    {
        std::mem::size_of::<GuardSlot<T>>()
    }
    #[cfg(not(any(debug_assertions, feature = "fault-inject")))]
    {
        std::mem::size_of::<T>()
    }
}

/// Allocation layout for a slab of `objects` slots (guard-aware).
fn slab_layout<T>(objects: usize) -> Option<Layout> {
    #[cfg(any(debug_assertions, feature = "fault-inject"))]
    {
        Layout::array::<GuardSlot<T>>(objects).ok()
    }
    #[cfg(not(any(debug_assertions, feature = "fault-inject")))]
    {
        Layout::array::<T>(objects).ok()
    }
}

/// Read a guarded slot's generation tag (tests of the guard machinery).
///
/// # Safety
/// `ptr` must point at a slot carved by [`SlabReserve::carve`] whose slab
/// is still allocated.
#[cfg(all(test, any(debug_assertions, feature = "fault-inject")))]
pub(crate) unsafe fn slot_generation<T>(ptr: NonNull<T>) -> u64 {
    let slot = ptr.as_ptr().cast::<GuardSlot<T>>();
    unsafe { std::ptr::addr_of!((*slot).generation).read() }
}

/// Validate a guarded slot's canary and liveness, panicking on corruption,
/// on a dead slot when `expect_live`, or on a live one otherwise.
///
/// # Safety
/// Same contract as [`slot_generation`].
#[cfg(any(debug_assertions, feature = "fault-inject"))]
unsafe fn check_slot<T>(ptr: NonNull<T>, expect_live: bool, what: &str) -> u64 {
    let slot = ptr.as_ptr().cast::<GuardSlot<T>>();
    let canary = unsafe { std::ptr::addr_of!((*slot).canary).read() };
    assert_eq!(
        canary,
        guard::canary_for(slot as usize),
        "pool guard: slab slot canary clobbered at {what} (heap corruption near {slot:p})",
    );
    let generation = unsafe { std::ptr::addr_of!((*slot).generation).read() };
    let live = generation & guard::GEN_LIVE != 0;
    assert_eq!(
        live,
        expect_live,
        "pool guard: {what} on a {} slab slot at {slot:p} \
         (double release, or use of a stale handle after reuse)",
        if live { "live" } else { "dead" },
    );
    generation
}

/// The raw backing buffer of one slab: `capacity` uninitialized `T` slots.
///
/// Never touches the slots itself — it is purely a deallocation token.
/// Objects carved from the slab each hold an `Arc<SlabStorage<T>>`; the
/// buffer is freed when the last such object (and any live
/// [`SlabReserve`] cursor) is gone.
pub(crate) struct SlabStorage<T> {
    buf: NonNull<T>,
    capacity: usize,
}

// The storage is only a dealloc token: it never reads or writes a `T`.
// Thread-safety of the *values* is carried by `PoolBox` itself.
unsafe impl<T> Send for SlabStorage<T> {}
unsafe impl<T> Sync for SlabStorage<T> {}

impl<T> Drop for SlabStorage<T> {
    fn drop(&mut self) {
        // All slots are either never initialized (unused reserve) or were
        // dropped in place by their PoolBox before its Arc released.
        let layout = slab_layout::<T>(self.capacity).expect("layout fit at carve time");
        unsafe { dealloc(self.buf.as_ptr().cast(), layout) };
    }
}

impl<T> fmt::Debug for SlabStorage<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabStorage").field("capacity", &self.capacity).finish()
    }
}

/// A thread's private cursor over the not-yet-used tail of a slab.
///
/// `take` is a pointer bump — no atomics, no lock: a reserve is owned by
/// exactly one thread's magazine at a time.
#[derive(Debug)]
pub(crate) struct SlabReserve<T> {
    slab: Arc<SlabStorage<T>>,
    next: usize,
}

impl<T> SlabReserve<T> {
    /// Allocate one contiguous slab of `objects` uninitialized slots.
    /// Returns `None` when slabs cannot help: zero-sized types, fewer than
    /// two slots (a one-slot slab is just a slow `Box`), or allocation
    /// failure — callers then fall back to plain boxing.
    pub(crate) fn carve(objects: usize) -> Option<Self> {
        if std::mem::size_of::<T>() == 0 || objects < 2 {
            return None;
        }
        let layout = slab_layout::<T>(objects)?;
        let buf = NonNull::new(unsafe { alloc(layout) }.cast::<T>())?;
        Some(SlabReserve { slab: Arc::new(SlabStorage { buf, capacity: objects }), next: 0 })
    }

    /// Hand out the next uninitialized slot, or `None` when the slab is
    /// used up.
    pub(crate) fn take(&mut self) -> Option<SlabSlot<T>> {
        if self.next >= self.slab.capacity {
            return None;
        }
        // In bounds by the check above; the slab outlives the slot via Arc.
        // Slots are `slot_stride` apart — identical to `add(next)` in
        // release builds, guard-word-aware in debug/fault-inject builds.
        let ptr = unsafe {
            NonNull::new_unchecked(
                self.slab.buf.as_ptr().cast::<u8>().add(self.next * slot_stride::<T>()).cast::<T>(),
            )
        };
        #[cfg(any(debug_assertions, feature = "fault-inject"))]
        unsafe {
            // Arm the guard words before the slot is ever handed out. Raw
            // field writes: the slot memory is still uninitialized.
            let slot = ptr.as_ptr().cast::<GuardSlot<T>>();
            std::ptr::addr_of_mut!((*slot).canary).write(guard::canary_for(slot as usize));
            std::ptr::addr_of_mut!((*slot).generation).write(0);
        }
        self.next += 1;
        Some(SlabSlot { ptr, slab: Arc::clone(&self.slab) })
    }

    /// True when every slot has been handed out.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.next >= self.slab.capacity
    }
}

/// One uninitialized slot taken from a slab, waiting for its value.
///
/// Split from [`SlabReserve::take`] so the user's constructor closure runs
/// *outside* the thread-local magazine borrow (constructors are user code
/// and may re-enter pool operations). If `fill` is never called (e.g. the
/// constructor panics), the slot's memory is simply never reused; the
/// slab still frees once every sibling is gone — leaked capacity, no UB.
#[derive(Debug)]
pub(crate) struct SlabSlot<T> {
    ptr: NonNull<T>,
    slab: Arc<SlabStorage<T>>,
}

impl<T> SlabSlot<T> {
    /// Placement-write `value` into the slot, producing a live [`PoolBox`].
    pub(crate) fn fill(self, value: T) -> PoolBox<T> {
        #[cfg(any(debug_assertions, feature = "fault-inject"))]
        unsafe {
            // The canary must have survived since `take` (catches a stray
            // write between carve and fill) and the slot must be dead.
            let generation = check_slot(self.ptr, false, "fill");
            let slot = self.ptr.as_ptr().cast::<GuardSlot<T>>();
            std::ptr::addr_of_mut!((*slot).generation)
                .write(generation.wrapping_add(2) | guard::GEN_LIVE);
        }
        unsafe { self.ptr.as_ptr().write(value) };
        PoolBox { ptr: self.ptr, slab: Some(self.slab) }
    }
}

/// An owned pooled object: `Box`-like, but possibly living inside a slab.
///
/// * `slab == None`: the value is an ordinary `Box<T>` allocation and is
///   freed as one on drop.
/// * `slab == Some(..)`: the value occupies a slab slot; drop runs the
///   destructor in place and releases the slab reference (the backing
///   buffer deallocates with the last reference).
pub struct PoolBox<T> {
    ptr: NonNull<T>,
    slab: Option<Arc<SlabStorage<T>>>,
}

// Same rules as Box<T>: owning a T across threads needs T: Send; sharing
// references needs T: Sync. The slab Arc is Send+Sync unconditionally.
unsafe impl<T: Send> Send for PoolBox<T> {}
unsafe impl<T: Sync> Sync for PoolBox<T> {}

impl<T> PoolBox<T> {
    /// Box a fresh value on the plain heap (no slab).
    pub fn new(value: T) -> Self {
        PoolBox::from(Box::new(value))
    }
}

impl<T> From<Box<T>> for PoolBox<T> {
    fn from(b: Box<T>) -> Self {
        // Box never returns null.
        let ptr = unsafe { NonNull::new_unchecked(Box::into_raw(b)) };
        PoolBox { ptr, slab: None }
    }
}

impl<T> Deref for PoolBox<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> DerefMut for PoolBox<T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> Drop for PoolBox<T> {
    fn drop(&mut self) {
        match self.slab.take() {
            // Reconstitute the Box: value drops and the allocation frees.
            None => drop(unsafe { Box::from_raw(self.ptr.as_ptr()) }),
            Some(slab) => {
                // Guarded builds verify the canary and the live bit *before*
                // running the destructor: a double release panics here
                // instead of double-dropping the value.
                #[cfg(any(debug_assertions, feature = "fault-inject"))]
                unsafe {
                    let generation = check_slot(self.ptr, true, "drop");
                    let slot = self.ptr.as_ptr().cast::<GuardSlot<T>>();
                    std::ptr::addr_of_mut!((*slot).generation).write(generation & !guard::GEN_LIVE);
                }
                unsafe { std::ptr::drop_in_place(self.ptr.as_ptr()) };
                drop(slab); // last sibling out frees the whole slab
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PoolBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

impl<T: fmt::Display> fmt::Display for PoolBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

impl<T> AsRef<T> for PoolBox<T> {
    fn as_ref(&self) -> &T {
        self
    }
}

impl<T> AsMut<T> for PoolBox<T> {
    fn as_mut(&mut self) -> &mut T {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn boxed_roundtrip() {
        let mut b = PoolBox::new(41u64);
        *b += 1;
        assert_eq!(*b, 42);
        let from_box: PoolBox<u64> = Box::new(7).into();
        assert_eq!(*from_box, 7);
    }

    #[test]
    fn slab_slots_are_distinct_and_live() {
        let mut reserve: SlabReserve<u64> = SlabReserve::carve(4).expect("small slab");
        let a = reserve.take().unwrap().fill(1);
        let b = reserve.take().unwrap().fill(2);
        assert_eq!((*a, *b), (1, 2));
        assert!(!reserve.is_exhausted());
        let _c = reserve.take().unwrap().fill(3);
        let _d = reserve.take().unwrap().fill(4);
        assert!(reserve.is_exhausted());
        assert!(reserve.take().is_none());
    }

    #[test]
    fn slab_frees_after_last_object_and_runs_destructors() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Loud(#[allow(dead_code)] u32);
        impl Drop for Loud {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let mut reserve: SlabReserve<Loud> = SlabReserve::carve(3).expect("small slab");
        let a = reserve.take().unwrap().fill(Loud(1));
        let b = reserve.take().unwrap().fill(Loud(2));
        drop(reserve); // unused tail slot never runs a destructor
        drop(a);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn carve_rejects_degenerate_requests() {
        assert!(SlabReserve::<u64>::carve(0).is_none());
        assert!(SlabReserve::<u64>::carve(1).is_none());
        assert!(SlabReserve::<()>::carve(16).is_none(), "ZSTs take the Box path");
    }

    /// A dead slot revived through a forged handle must trip the guard
    /// before the destructor runs twice.
    #[cfg(any(debug_assertions, feature = "fault-inject"))]
    #[test]
    fn guard_detects_double_release_of_a_slab_slot() {
        let mut reserve: SlabReserve<u64> = SlabReserve::carve(2).expect("small slab");
        let b = reserve.take().unwrap().fill(5);
        let (ptr, slab) = (b.ptr, b.slab.clone());
        drop(b); // the slot is now dead (live bit cleared)
        let forged = PoolBox { ptr, slab };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(forged)));
        assert!(outcome.is_err(), "double release must panic in guarded builds");
    }

    /// The generation tag counts fills and tracks liveness, so a stale
    /// handle from before a reuse is distinguishable from the live one.
    #[cfg(any(debug_assertions, feature = "fault-inject"))]
    #[test]
    fn guard_generation_tracks_fill_and_drop() {
        let mut reserve: SlabReserve<u32> = SlabReserve::carve(2).expect("small slab");
        let b = reserve.take().unwrap().fill(1);
        let ptr = b.ptr;
        let live_gen = unsafe { slot_generation(ptr) };
        assert_eq!(live_gen & guard::GEN_LIVE, guard::GEN_LIVE);
        drop(b); // reserve keeps the slab alive; the slot goes dead
        let dead_gen = unsafe { slot_generation(ptr) };
        assert_eq!(dead_gen, live_gen & !guard::GEN_LIVE);
        assert_eq!(dead_gen >> 1, 1, "one fill so far");
    }

    #[test]
    fn slab_objects_cross_threads() {
        let mut reserve: SlabReserve<u64> = SlabReserve::carve(2).expect("small slab");
        let a = reserve.take().unwrap().fill(11);
        let b = reserve.take().unwrap().fill(22);
        let h = std::thread::spawn(move || *a + *b);
        assert_eq!(h.join().unwrap(), 33);
    }
}
