//! Structure-pool runtime: the semantics that Amplify-generated code runs on,
//! implemented natively in Rust.
//!
//! The ICPP 2001 paper's pre-processor rewrites C++ so that:
//!
//! * every class allocates from its own **object pool** (free list of dead
//!   objects) instead of the heap — [`object_pool`];
//! * whole **object structures** are parked and revived with their internal
//!   links intact, exploiting temporal locality — [`structure_pool`] and the
//!   per-field [`shadow::Shadow`] slot that models the paper's *shadow
//!   pointers*;
//! * raw data arrays (`new char[n]`) are recycled through a shadowed
//!   `realloc` with a half-size reuse rule and size caps (§5.2, the BGw
//!   extension) — [`shadow_buf::ShadowBuf`];
//! * pools are **sharded** across threads ptmalloc-style to avoid lock
//!   contention — [`sharded::ShardedPool`] — and fronted by lock-free
//!   per-thread [`magazine`]s so steady-state acquire/release takes no
//!   lock at all; cold magazines exchange wholesale with a Bonwick-style
//!   [`depot`] of full magazines (one CAS per refill/flush), and fresh
//!   objects are carved from contiguous slabs ([`pool_box::PoolBox`]);
//! * in single-threaded programs all locks are elided
//!   ([`object_pool::LocalPool`]), which is why the paper's Figure 4 shows a
//!   1-thread Amplify advantage;
//! * the same magazine/depot/slab machinery, re-keyed by **size class**
//!   instead of type, serves untyped allocations as a malloc front-end —
//!   [`global::GlobalPool`] — installable process-wide as
//!   `#[global_allocator]` via the `global-alloc` feature, with MPSC
//!   remote-free queues so cross-thread `dealloc` is one CAS.
//!
//! All pools expose [`stats::PoolStats`] counters (hits, misses, failed lock
//! attempts) — the observability the paper used to conclude that Amplify's
//! critical sections are short enough that "threads will seldom or never be
//! blocked".
//!
//! # Quickstart
//!
//! ```
//! use pools::object_pool::ObjectPool;
//!
//! let pool: ObjectPool<Vec<u8>> = ObjectPool::new();
//! let a = pool.acquire(|| vec![0u8; 64]);
//! pool.release(a);
//! let _b = pool.acquire(|| vec![0u8; 64]); // reuses a's allocation
//! assert_eq!(pool.stats().pool_hits(), 1);
//! ```

pub mod bit_shadow;
mod depot;
pub mod fault;
pub mod global;
mod guard;
pub mod heap_profile;
pub mod limits;
pub mod magazine;
pub mod object_pool;
mod obs;
pub mod pool_box;
pub mod reclaim;
pub mod registry;
pub mod shadow;
pub mod shadow_buf;
pub mod shadow_vec;
pub mod sharded;
pub mod size_class;
pub mod stats;
pub mod structure_pool;
#[cfg(feature = "adaptive")]
pub mod tune;

pub use bit_shadow::BitShadow;
pub use global::GlobalPool;
pub use limits::PoolConfig;
pub use magazine::DEFAULT_MAGAZINE_CAP;
pub use object_pool::{LocalPool, ObjectPool};
pub use pool_box::PoolBox;
pub use registry::{PoolRegistry, Trimmable};
pub use shadow::Shadow;
pub use shadow_buf::ShadowBuf;
pub use shadow_vec::ShadowVec;
pub use sharded::ShardedPool;
pub use stats::PoolStats;
pub use structure_pool::{Reusable, StructurePool};
