//! The shadow-pointer slot: Amplify's core structure-preservation mechanism.
//!
//! In the rewritten C++, every pointer field `Child* left` gains a hidden
//! replica `Child* leftShadow`. `delete left;` becomes
//!
//! ```cpp
//! if (left) { left->~Child(); leftShadow = left; }
//! ```
//!
//! and `left = new Child(...)` becomes `left = new(leftShadow) Child(...)`.
//! [`Shadow<T>`] models the *pair* (pointer, shadow) as one safe Rust slot:
//! [`Shadow::kill`] parks the object without freeing it, and
//! [`Shadow::revive`] reuses the parked allocation when temporal locality
//! holds — falling back to a fresh allocation when it does not.

/// A field slot holding a live object, a parked ("logically deleted")
/// object, or nothing.
#[derive(Debug)]
pub struct Shadow<T> {
    state: State<T>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
enum State<T> {
    /// The pointer is live; the shadow is irrelevant.
    Live(Box<T>),
    /// The pointer was logically deleted; the allocation is parked in the
    /// shadow for reuse.
    Parked(Box<T>),
    /// Neither pointer nor shadow (both null — the state right after a
    /// fresh heap allocation zeroes the shadows).
    Empty,
}

impl<T> Default for Shadow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Shadow<T> {
    /// An empty slot (pointer and shadow both null).
    pub fn new() -> Self {
        Shadow { state: State::Empty, hits: 0, misses: 0 }
    }

    /// True if a live object is present.
    pub fn is_live(&self) -> bool {
        matches!(self.state, State::Live(_))
    }

    /// True if a dead allocation is parked for reuse.
    pub fn is_parked(&self) -> bool {
        matches!(self.state, State::Parked(_))
    }

    /// Borrow the live object.
    pub fn get(&self) -> Option<&T> {
        match &self.state {
            State::Live(b) => Some(b),
            _ => None,
        }
    }

    /// Mutably borrow the live object.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        match &mut self.state {
            State::Live(b) => Some(b),
            _ => None,
        }
    }

    /// Plain assignment of a freshly built object (`left = new Child(...)`
    /// when no shadow exists). Any previous live object is dropped; a parked
    /// allocation is displaced (dropped) — prefer [`Shadow::revive`], which
    /// reuses it.
    pub fn set(&mut self, value: Box<T>) {
        self.state = State::Live(value);
    }

    /// The rewritten `delete left;`: park the live object (running the
    /// destructor is modeled by `cleanup`). No-op when not live — matching
    /// the generated `if (left)` null check.
    pub fn kill_with(&mut self, cleanup: impl FnOnce(&mut T)) {
        if let State::Live(mut b) = std::mem::replace(&mut self.state, State::Empty) {
            cleanup(&mut b);
            self.state = State::Parked(b);
            crate::obs::pool_event!(ShadowPark);
        }
    }

    /// [`Shadow::kill_with`] without a cleanup action.
    pub fn kill(&mut self) {
        self.kill_with(|_| {});
    }

    /// The rewritten `left = new(leftShadow) Child(...)`: reuse the parked
    /// allocation if present (re-running the "constructor" via `reinit`) —
    /// a shadow **hit** — or build a fresh object with `fresh` — a **miss**.
    ///
    /// Returns `true` on a hit.
    pub fn revive(&mut self, fresh: impl FnOnce() -> T, reinit: impl FnOnce(&mut T)) -> bool {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Parked(mut b) => {
                reinit(&mut b);
                self.state = State::Live(b);
                self.hits += 1;
                crate::obs::pool_event!(ShadowReuse);
                true
            }
            State::Live(_) | State::Empty => {
                // Live: C++ would leak the old object; we drop it. Either
                // way the new allocation is fresh.
                self.state = State::Live(Box::new(fresh()));
                self.misses += 1;
                false
            }
        }
    }

    /// Remove and return the live object (ownership transfer out of the
    /// field).
    pub fn take(&mut self) -> Option<Box<T>> {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Live(b) => Some(b),
            other => {
                self.state = other;
                None
            }
        }
    }

    /// Drop any parked allocation (the real `delete` — used by trimming).
    pub fn discard_parked(&mut self) {
        if matches!(self.state, State::Parked(_)) {
            self.state = State::Empty;
        }
    }

    /// Reuses served by the parked allocation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Revivals that had to allocate fresh.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s: Shadow<u32> = Shadow::new();
        assert!(!s.is_live());
        assert!(!s.is_parked());
        assert!(s.get().is_none());
    }

    #[test]
    fn kill_then_revive_reuses_allocation() {
        let mut s = Shadow::new();
        // Capacity for the post-revive push: the point is that the shadow
        // revives the parked Vec itself; growth reallocation would only
        // preserve the pointer on allocators that extend in place.
        let mut v = Vec::with_capacity(4);
        v.extend([1, 2, 3]);
        s.set(Box::new(v));
        let addr_before = s.get().unwrap().as_ptr();
        s.kill();
        assert!(s.is_parked());
        let hit = s.revive(Vec::new, |v| v.push(9));
        assert!(hit);
        // Same heap allocation: the Vec's buffer pointer is unchanged.
        assert_eq!(s.get().unwrap().as_ptr(), addr_before);
        assert_eq!(s.get().unwrap().as_slice(), &[1, 2, 3, 9]);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn revive_from_empty_is_a_miss() {
        let mut s: Shadow<u32> = Shadow::new();
        let hit = s.revive(|| 5, |_| {});
        assert!(!hit);
        assert_eq!(*s.get().unwrap(), 5);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn kill_on_empty_is_noop() {
        let mut s: Shadow<u32> = Shadow::new();
        s.kill();
        assert!(!s.is_parked());
    }

    #[test]
    fn cleanup_runs_on_kill() {
        let mut s = Shadow::new();
        s.set(Box::new(String::from("resource")));
        let mut cleaned = false;
        s.kill_with(|v| {
            v.clear(); // the "destructor" releasing resources
            cleaned = true;
        });
        assert!(cleaned);
        let hit = s.revive(String::new, |_| {});
        assert!(hit);
        assert!(s.get().unwrap().is_empty());
    }

    #[test]
    fn take_transfers_ownership() {
        let mut s = Shadow::new();
        s.set(Box::new(42u32));
        let b = s.take().unwrap();
        assert_eq!(*b, 42);
        assert!(!s.is_live());
        // take on parked leaves the parked allocation in place.
        s.set(Box::new(1));
        s.kill();
        assert!(s.take().is_none());
        assert!(s.is_parked());
    }

    #[test]
    fn discard_parked_frees() {
        let mut s = Shadow::new();
        s.set(Box::new(1u8));
        s.kill();
        s.discard_parked();
        assert!(!s.is_parked());
        let hit = s.revive(|| 2, |_| {});
        assert!(!hit);
    }

    #[test]
    fn repeated_cycles_all_hit() {
        let mut s = Shadow::new();
        s.set(Box::new(0u64));
        for i in 0..100 {
            s.kill();
            let hit = s.revive(|| unreachable!(), |v| *v = i);
            assert!(hit);
        }
        assert_eq!(s.hits(), 100);
        assert_eq!(s.misses(), 0);
    }
}
