//! Typed shadowed arrays: the `int[]` counterpart of
//! [`crate::shadow_buf::ShadowBuf`].
//!
//! BGw's data-type arrays were `char[]` **and** `int[]` (§5.2). `ShadowVec`
//! applies the same shadowed-realloc discipline to any element type.

use crate::limits::PoolConfig;

/// One shadowed typed-array slot.
#[derive(Debug)]
pub struct ShadowVec<T> {
    parked: Option<Vec<T>>,
    config: PoolConfig,
    hits: u64,
    misses: u64,
    dropped: u64,
}

impl<T: Default + Clone> Default for ShadowVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default + Clone> ShadowVec<T> {
    /// An empty slot with the default (unbounded, half-size-rule) config.
    pub fn new() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// An empty slot with explicit limits. `max_shadow_bytes` compares
    /// against the parked block's *byte* size (`capacity * size_of::<T>()`).
    pub fn with_config(config: PoolConfig) -> Self {
        ShadowVec { parked: None, config, hits: 0, misses: 0, dropped: 0 }
    }

    /// `array = new T[len]` → shadowed realloc. Returns a default-filled
    /// vector of exactly `len` elements, reusing the parked block when the
    /// half-size rule allows.
    pub fn acquire(&mut self, len: usize) -> Vec<T> {
        let mut v = match self.parked.take() {
            Some(parked) if self.config.may_reuse(parked.capacity(), len) => {
                self.hits += 1;
                parked
            }
            Some(parked) => {
                drop(parked);
                self.misses += 1;
                Vec::with_capacity(len)
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        v.clear();
        v.resize(len, T::default());
        v
    }

    /// `delete[] array` → park for reuse (unless over the byte cap).
    pub fn release(&mut self, v: Vec<T>) {
        let bytes = v.capacity() * std::mem::size_of::<T>();
        if self.config.accepts_shadow(bytes) {
            self.parked = Some(v);
        } else {
            self.dropped += 1;
        }
    }

    /// True if a block is parked.
    pub fn has_parked(&self) -> bool {
        self.parked.is_some()
    }

    /// Capacity (in elements) of the parked block.
    pub fn parked_capacity(&self) -> usize {
        self.parked.as_ref().map(Vec::capacity).unwrap_or(0)
    }

    /// Drop the parked block.
    pub fn discard(&mut self) {
        self.parked = None;
    }

    /// Requests served by reuse.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that allocated fresh memory.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Blocks refused parking by the byte cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_reuse_keeps_allocation() {
        let mut s: ShadowVec<u32> = ShadowVec::new();
        let v = s.acquire(100);
        let addr = v.as_ptr();
        s.release(v);
        let v2 = s.acquire(80); // within half-size window
        assert_eq!(v2.as_ptr(), addr);
        assert_eq!(v2.len(), 80);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn reused_elements_are_defaulted() {
        let mut s: ShadowVec<i64> = ShadowVec::new();
        let mut v = s.acquire(8);
        v.iter_mut().for_each(|x| *x = -1);
        s.release(v);
        let v2 = s.acquire(8);
        assert!(v2.iter().all(|&x| x == 0));
    }

    #[test]
    fn half_size_rule_on_elements() {
        let mut s: ShadowVec<u16> = ShadowVec::new();
        let v = s.acquire(100);
        let cap = v.capacity();
        s.release(v);
        let _small = s.acquire(cap / 2 - 1);
        assert_eq!(s.hits(), 0, "below half: fresh allocation");
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn byte_cap_accounts_for_element_size() {
        // 64-byte cap: 16 u32s fit, 17 do not.
        let cfg = PoolConfig { max_shadow_bytes: Some(64), ..Default::default() };
        let mut s: ShadowVec<u32> = ShadowVec::with_config(cfg);
        let v = s.acquire(16);
        let fits = v.capacity() * 4 <= 64;
        s.release(v);
        assert_eq!(s.has_parked(), fits);
        let mut s2: ShadowVec<u32> = ShadowVec::with_config(cfg);
        let v = s2.acquire(32);
        s2.release(v);
        assert!(!s2.has_parked());
        assert_eq!(s2.dropped(), 1);
    }

    #[test]
    fn non_copy_element_types_work() {
        let mut s: ShadowVec<String> = ShadowVec::new();
        let mut v = s.acquire(4);
        v[0] = "hello".into();
        s.release(v);
        let v2 = s.acquire(4);
        assert!(v2.iter().all(String::is_empty));
        assert_eq!(s.hits(), 1);
    }
}
