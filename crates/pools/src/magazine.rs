//! Thread-local magazines: the lock-free fast path in front of a sharded
//! pool (the tcmalloc/Hoard thread-cache idea applied to object pools),
//! backed by a Bonwick-style **magazine depot**.
//!
//! Each thread keeps a small bounded cache — a *magazine* — of parked
//! objects per pool. Steady-state acquire/release is a thread-local vector
//! pop/push: no mutex, no hash lookup. When a magazine runs empty or full
//! the thread first tries the *depot*: per-shard Treiber stacks of whole
//! full magazines ([`crate::depot`]), exchanged in one CAS — an O(1)
//! refill/flush no matter the magazine capacity. Shard locks are only taken
//! when the depot has nothing to offer (refill) or the pool is capped
//! (flush must consult the population limit), and fresh allocation carves
//! objects out of contiguous slabs ([`crate::pool_box::SlabReserve`]) so
//! one heap call serves a whole magazine's worth of misses.
//!
//! Invariants the rest of the crate (and the stress tests) rely on:
//!
//! * every object is in exactly one place at any time — held by a caller,
//!   cached in one magazine, parked in one depot node, or parked in one
//!   shard free list;
//! * [`Depot::magazine_parked`] equals the summed size of all live
//!   magazines, [`Depot::depot_parked`] the objects inside parked depot
//!   magazines, and [`Depot::shard_parked`] the shard free-list population
//!   (exact in magazine mode, where shards gain/lose objects only through
//!   the counted batch paths) — so `ShardedPool::len()` is accurate without
//!   reaching into other threads' caches;
//! * a thread's magazines flush back to the shards when the thread exits
//!   (TLS destructor), so no object leaks and `trim` can still reclaim it;
//! * `trim` drains the *calling* thread's magazine, empties the depot, and
//!   bumps [`Depot::trim_epoch`]; other threads observe the stale epoch on
//!   their next operation and drop their cached objects lazily (a trim
//!   cannot safely touch another thread's `RefCell`). Depot nodes carry the
//!   epoch they were parked under, so a node that raced past the drain is
//!   recognized as stale at swap time and discarded then.

use crate::depot::{DepotNode, MagStack};
use crate::fault;
use crate::guard;
use crate::limits::PoolConfig;
use crate::object_pool::ObjectPool;
use crate::obs::{pool_event, pool_hist};
use crate::pool_box::{PoolBox, SlabReserve, SlabSlot};
use crate::stats::PoolStats;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Default objects a magazine may hold (per thread, per pool).
pub const DEFAULT_MAGAZINE_CAP: usize = 32;

/// Upper bound on one carved slab's backing buffer. Keeps a cold pool of
/// large objects from committing megabytes on its first miss.
const MAX_SLAB_BYTES: usize = 64 * 1024;

/// Pool ids double as thread-local slot indices, so they are never reused.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's magazines, indexed by pool id. `dyn Any` erases the
    /// pooled object type; a slot is only ever written by the pool owning
    /// that id, so the downcast always succeeds.
    static MAGAZINES: RefCell<Vec<Option<Box<dyn Any>>>> = const { RefCell::new(Vec::new()) };
}

/// The shared half of a magazine-fronted pool: the shard array, the
/// full-magazine depot stacks, and the counters magazines coordinate
/// through.
#[derive(Debug)]
pub(crate) struct Depot<T> {
    id: u64,
    pub(crate) shards: Box<[ObjectPool<T>]>,
    /// Objects a magazine may hold; 0 disables magazines (direct mode).
    pub(crate) magazine_cap: usize,
    /// Round-robin cursor assigning home shards to new magazines — the
    /// one-time replacement for hashing the thread id on every operation.
    next_shard: AtomicUsize,
    /// Bumped by `trim`; magazines with an older epoch discard their cache.
    trim_epoch: AtomicU64,
    /// One [`MagCells`] per live magazine, each written only by its owning
    /// thread with relaxed *stores* (plain `mov`s — no locked RMW on the
    /// acquire/release fast paths). Readers lock the list and sum.
    mag_counts: Mutex<Vec<Arc<MagCells>>>,
    /// Objects parked inside full magazines on the depot stacks.
    depot_parked: AtomicUsize,
    /// Shard free-list population, maintained by the counted batch paths
    /// (exact in magazine mode; direct mode bypasses it and uses
    /// [`ObjectPool::len`] instead).
    shard_parked: AtomicUsize,
    /// Full-magazine Treiber stacks, one per shard (locality: a magazine
    /// parks on and swaps from its home shard's stack first).
    full: Box<[MagStack<T>]>,
    /// Recycled empty node shells, ready for the next park.
    free_nodes: MagStack<T>,
    /// Every node ever allocated for this depot, by address. Nodes are
    /// type-stable while the depot lives (the lock-free pop relies on it)
    /// and are freed here, in `Drop`, when the depot is the sole owner.
    nodes: Mutex<Vec<usize>>,
    /// Whole-magazine depot exchange enabled: magazines on and the pool
    /// uncapped. Capped pools keep the half-flush through the shard locks,
    /// where the population limit is enforced.
    depot_enabled: bool,
    /// Slots per carved slab (0 disables slab carving).
    pub(crate) slab_objects: usize,
    /// Minimum shard free-list population before a cold acquire tries a
    /// batched shard refill (historically 1, i.e. `shard_parked() > 0`).
    pub(crate) depot_gate: usize,
    /// Objects moved per batched shard refill (historically
    /// `magazine_cap / 2`, at least 1).
    pub(crate) refill_target: usize,
    /// Hits/fresh/releases recorded by the magazine fast path (shard-level
    /// stats only see batch lock traffic).
    pub(crate) stats: PoolStats,
    /// Park/unpark/reclaim books, reconciled at drop (zero-sized no-op in
    /// default release builds — see [`crate::guard`]).
    pub(crate) guard: guard::Ledger,
}

impl<T> Depot<T> {
    pub(crate) fn new(shards: usize, config: PoolConfig, magazine_cap: usize) -> Self {
        assert!(shards >= 1, "a sharded pool needs at least one shard");
        let per_slab_cap = if std::mem::size_of::<T>() == 0 {
            0
        } else {
            MAX_SLAB_BYTES / std::mem::size_of::<T>()
        };
        let carve_want = match config.carve_batch {
            Some(n) => n.max(2),
            None => magazine_cap * 2,
        };
        let slab_objects = if magazine_cap == 0 || per_slab_cap < 2 {
            0 // slabs can't amortize anything here; plain boxing instead
        } else {
            carve_want.min(per_slab_cap)
        };
        Depot {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            shards: (0..shards).map(|_| ObjectPool::with_config(config)).collect(),
            magazine_cap,
            next_shard: AtomicUsize::new(0),
            trim_epoch: AtomicU64::new(0),
            mag_counts: Mutex::new(Vec::new()),
            depot_parked: AtomicUsize::new(0),
            shard_parked: AtomicUsize::new(0),
            full: (0..shards).map(|_| MagStack::new()).collect(),
            free_nodes: MagStack::new(),
            nodes: Mutex::new(Vec::new()),
            depot_enabled: magazine_cap > 0 && config.max_objects.is_none(),
            slab_objects,
            depot_gate: config.depot_gate.max(1),
            refill_target: config.refill_target(magazine_cap),
            stats: PoolStats::new(),
            guard: guard::Ledger::default(),
        }
    }

    /// Objects cached in magazines across all threads (sum of the live
    /// magazines' count cells).
    pub(crate) fn magazine_parked(&self) -> usize {
        self.mag_counts.lock().iter().map(|c| c.parked.load(Ordering::Relaxed)).sum()
    }

    /// Hits and releases counted by live magazines but not yet folded into
    /// [`Depot::stats`] (that happens when a magazine drops). Read
    /// `releases` before `hits` within each cell for the same reason
    /// [`PoolStats::snapshot`] reads them in that order.
    pub(crate) fn magazine_hot_counts(&self) -> (u64, u64) {
        let cells = self.mag_counts.lock();
        let mut hits = 0;
        let mut releases = 0;
        for c in cells.iter() {
            releases += c.releases.load(Ordering::Relaxed);
            hits += c.hits.load(Ordering::Relaxed);
        }
        (hits, releases)
    }

    /// Objects parked in full magazines on the depot stacks.
    pub(crate) fn depot_parked(&self) -> usize {
        self.depot_parked.load(Ordering::Relaxed)
    }

    /// Shard free-list population as tracked by the batch paths.
    pub(crate) fn shard_parked(&self) -> usize {
        self.shard_parked.load(Ordering::Relaxed)
    }

    /// Invalidate every thread's magazine for this pool. Remote threads
    /// notice on their next operation and drop their cache.
    pub(crate) fn bump_trim_epoch(&self) {
        self.trim_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// An empty node shell to park a magazine in: recycled if possible,
    /// freshly allocated (and registered for eventual free) otherwise.
    fn alloc_node(&self) -> NonNull<DepotNode<T>> {
        if let Some(node) = self.free_nodes.pop() {
            return node;
        }
        let node = NonNull::from(Box::leak(Box::new(DepotNode::new())));
        self.nodes.lock().push(node.as_ptr() as usize);
        node
    }

    /// Pop a full magazine, probing each shard's stack once from `start`.
    fn pop_full(&self, start: usize) -> Option<NonNull<DepotNode<T>>> {
        let n = self.full.len();
        for off in 0..n {
            let idx = (start + off) % n;
            if let Some(node) = self.full[idx].pop() {
                return Some(node);
            }
        }
        None
    }

    /// True when no stack holds a full magazine (racy hint; a stale answer
    /// only costs the caller the probe a miss would have done anyway).
    fn depot_empty_hint(&self) -> bool {
        self.full.iter().all(MagStack::is_empty_hint)
    }

    /// Pop every parked magazine off every stack and drop the contents
    /// (trim support). Returns how many objects were reclaimed.
    pub(crate) fn drain_depot(&self) -> usize {
        let mut reclaimed: Vec<PoolBox<T>> = Vec::new();
        for stack in self.full.iter() {
            while let Some(node_ptr) = stack.pop() {
                // We own the node after a successful pop; the depot is
                // alive (we are a method on it), so the deref is safe.
                let node = unsafe { &mut *node_ptr.as_ptr() };
                reclaimed.append(&mut node.items);
                self.free_nodes.push(node_ptr);
            }
        }
        let n = reclaimed.len();
        self.depot_parked.fetch_sub(n, Ordering::Relaxed);
        self.guard.record_reclaim(n);
        drop(reclaimed); // user destructors run here, outside any stack op
        n
    }

    /// Trim every shard's free list, keeping `shard_parked` in step.
    pub(crate) fn trim_shards(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            let n = shard.trim();
            self.shard_parked.fetch_sub(n, Ordering::Relaxed);
            total += n;
        }
        self.guard.record_reclaim(total);
        total
    }

    /// Park `items` into shards starting at `start`, spilling to the next
    /// shard on lock contention (ptmalloc's arena rule), blocking on the
    /// home shard if every shard is contended.
    pub(crate) fn park_batch(&self, start: usize, items: &mut Vec<PoolBox<T>>) {
        let n = self.shards.len();
        for off in 0..n {
            let idx = (start + off) % n;
            if let Ok(parked) = self.shards[idx].try_put_batch(items) {
                self.shard_parked.fetch_add(parked, Ordering::Relaxed);
                return;
            }
        }
        let parked = self.shards[start].put_batch(items);
        self.shard_parked.fetch_add(parked, Ordering::Relaxed);
    }

    /// Move up to `max` objects into `out` from the first shard that has
    /// any, probing each shard once starting at `start` (empty and
    /// contended shards are skipped). Returns the shard that supplied the
    /// batch. When every shard was visited and nothing was found, `out`
    /// stays empty and the caller allocates fresh; if *all* shards were
    /// contended the refill blocks on the home shard instead (ptmalloc
    /// ultimately waits too).
    pub(crate) fn refill_batch(
        &self,
        start: usize,
        max: usize,
        out: &mut Vec<PoolBox<T>>,
    ) -> usize {
        let n = self.shards.len();
        let mut all_contended = true;
        for off in 0..n {
            let idx = (start + off) % n;
            match self.shards[idx].try_take_batch(max, out) {
                Ok(k) if k > 0 => {
                    self.shard_parked.fetch_sub(k, Ordering::Relaxed);
                    return idx;
                }
                Ok(_) => all_contended = false, // unlocked but empty
                Err(()) => {}
            }
        }
        if all_contended {
            let k = self.shards[start].take_batch(max, out);
            self.shard_parked.fetch_sub(k, Ordering::Relaxed);
        }
        start
    }
}

impl<T> Drop for Depot<T> {
    fn drop(&mut self) {
        // Exact live-object accounting (guarded builds only): when no
        // foreign magazine is still live, every parked object is visible
        // from here — the shard free lists plus the items inside parked
        // depot nodes — and the guard ledger must balance against that
        // population and the cap-drop counters.
        #[cfg(any(debug_assertions, feature = "fault-inject"))]
        if self.mag_counts.get_mut().is_empty() {
            let mut physically_parked: usize = self.shards.iter().map(ObjectPool::len).sum();
            for &addr in self.nodes.get_mut().iter() {
                // Sole owner: the node is ours to read.
                physically_parked += unsafe { &*(addr as *const DepotNode<T>) }.items.len();
            }
            let cap_dropped =
                self.stats.dropped() + self.shards.iter().map(|s| s.stats().dropped()).sum::<u64>();
            self.guard.reconcile(physically_parked, cap_dropped);
        }
        // Sole owner now: no thread can race a stack operation. Free every
        // node ever allocated; full ones drop their objects with their Vec.
        for &addr in self.nodes.get_mut().iter() {
            drop(unsafe { Box::from_raw(addr as *mut DepotNode<T>) });
        }
    }
}

/// One magazine's shared counter cell. The owning thread publishes with
/// relaxed *stores* after every operation (see [`with_magazine`]) — plain
/// `mov`s to a line no other thread writes, so the fast paths carry no
/// locked RMW at all. Cross-thread readers go through [`Depot::mag_counts`]
/// and see values exact at quiescent points (thread-join or barrier
/// synchronization orders the stores before the reads).
#[derive(Debug, Default)]
struct MagCells {
    /// Mirrors `Magazine::items.len()`.
    parked: AtomicUsize,
    /// Magazine fast-path acquire hits (mirrors `Magazine::hits`).
    hits: AtomicU64,
    /// Magazine releases (mirrors `Magazine::releases`).
    releases: AtomicU64,
}

/// One thread's cache of parked objects for one pool.
pub(crate) struct Magazine<T> {
    depot: Weak<Depot<T>>,
    items: Vec<PoolBox<T>>,
    /// This magazine's entry in [`Depot::mag_counts`].
    cells: Arc<MagCells>,
    /// Acquire hits served by this magazine, counted as a plain field and
    /// published through `cells`; folded into [`Depot::stats`] on drop.
    hits: u64,
    /// Releases accepted by this magazine; same lifecycle as `hits`.
    releases: u64,
    /// Home shard for refills and flushes.
    shard: usize,
    /// Copy of [`Depot::trim_epoch`] from the last (in)validation.
    epoch: u64,
    /// Empty node shell kept back from the last depot exchange, so the
    /// steady empty↔full cycle never touches the free-node stack.
    spare: Option<NonNull<DepotNode<T>>>,
    /// Recycled overflow-flush buffer (capped pools), so the flush slow
    /// path does not allocate a fresh `Vec` per overflow.
    flush_buf: Vec<PoolBox<T>>,
    /// Private cursor over the unused tail of the last carved slab.
    reserve: Option<SlabReserve<T>>,
}

impl<T> Drop for Magazine<T> {
    fn drop(&mut self) {
        // Thread exit (TLS teardown): hand cached objects back to the
        // shards so they stay reachable by `trim` instead of leaking, and
        // return the spare node shell to the depot. If the pool itself is
        // already gone, the objects simply drop (and the depot has already
        // freed every node, spare included — don't touch it).
        if let Some(depot) = self.depot.upgrade() {
            // Fold-on-drop must be panic-safe: parking the cached objects
            // can run arbitrary user destructors (a capped shard drops the
            // overflow), and if one of them panics the locally-counted
            // hits/releases must still reach the shared stats. The fold
            // lives in this guard's own `Drop`, which runs even while
            // `park_batch` unwinds.
            struct FoldOnDrop<'a, T> {
                depot: &'a Depot<T>,
                cells: &'a Arc<MagCells>,
                hits: u64,
                releases: u64,
            }
            impl<T> Drop for FoldOnDrop<'_, T> {
                fn drop(&mut self) {
                    // Fold the counts into the shared stats and retire the
                    // cell in one critical section, so a stats reader
                    // (which also locks `mag_counts`) never counts them
                    // twice — and never loses them to a mid-park panic.
                    let mut cells = self.depot.mag_counts.lock();
                    self.depot.stats.fold_magazine_counts(self.hits, self.releases);
                    cells.retain(|c| !Arc::ptr_eq(c, self.cells));
                }
            }
            let _fold = FoldOnDrop {
                depot: &depot,
                cells: &self.cells,
                hits: self.hits,
                releases: self.releases,
            };
            if let Some(node) = self.spare.take() {
                depot.free_nodes.push(node);
            }
            if !self.items.is_empty() {
                let mut items = std::mem::take(&mut self.items);
                depot.park_batch(self.shard, &mut items);
            }
        }
    }
}

/// Run `f` on the calling thread's magazine for `depot`, creating it on
/// first touch (home shard assigned round-robin).
///
/// `f` must not run user code (constructors, destructors) — the thread-local
/// registry is borrowed for its duration, and a pooled type whose `Drop`
/// touches another pool would otherwise re-enter the borrow.
fn with_magazine<T: 'static, R>(depot: &Arc<Depot<T>>, f: impl FnOnce(&mut Magazine<T>) -> R) -> R {
    let idx = depot.id as usize;
    MAGAZINES.with(|slots| {
        let mut slots = slots.borrow_mut();
        if slots.len() <= idx {
            slots.resize_with(idx + 1, || None);
        }
        let slot = &mut slots[idx];
        if slot.is_none() {
            let shard = depot.next_shard.fetch_add(1, Ordering::Relaxed) % depot.shards.len();
            let cells = Arc::new(MagCells::default());
            depot.mag_counts.lock().push(Arc::clone(&cells));
            *slot = Some(Box::new(Magazine {
                depot: Arc::downgrade(depot),
                items: Vec::with_capacity(depot.magazine_cap),
                cells,
                hits: 0,
                releases: 0,
                shard,
                epoch: depot.trim_epoch.load(Ordering::Relaxed),
                spare: None,
                flush_buf: Vec::new(),
                reserve: None,
            }));
        }
        let mag = slot
            .as_mut()
            .expect("slot was just filled")
            .downcast_mut::<Magazine<T>>()
            .expect("pool ids are never reused, so the slot type matches");
        let r = f(mag);
        publish_cells(mag);
        r
    })
}

/// Publish a magazine's local counters to its shared cell — three relaxed
/// stores to one thread-owned line, the whole cost of cross-thread counter
/// visibility on the fast paths.
#[inline(always)]
fn publish_cells<T>(mag: &Magazine<T>) {
    mag.cells.parked.store(mag.items.len(), Ordering::Relaxed);
    mag.cells.hits.store(mag.hits, Ordering::Relaxed);
    mag.cells.releases.store(mag.releases, Ordering::Relaxed);
}

/// Like [`with_magazine`] but without creating a missing magazine.
fn with_magazine_opt<T: 'static, R>(
    depot: &Arc<Depot<T>>,
    f: impl FnOnce(&mut Magazine<T>) -> R,
) -> Option<R> {
    let idx = depot.id as usize;
    MAGAZINES.with(|slots| {
        let mut slots = slots.borrow_mut();
        let mag = slots
            .get_mut(idx)?
            .as_mut()?
            .downcast_mut::<Magazine<T>>()
            .expect("pool ids are never reused, so the slot type matches");
        let r = f(mag);
        publish_cells(mag);
        Some(r)
    })
}

/// If a trim happened since this magazine last looked, surrender the cached
/// objects (returned for the caller to drop outside the TLS borrow) and the
/// slab reserve (raw memory — safe to release in place).
///
/// Split hot/cold: the epoch compare sits on the acquire/release fast
/// paths, so it must inline to a load-and-branch; the surrender itself is
/// outlined.
#[inline(always)]
fn invalidate_if_stale<T>(mag: &mut Magazine<T>, depot: &Depot<T>) -> Vec<PoolBox<T>> {
    let epoch = depot.trim_epoch.load(Ordering::Relaxed);
    if mag.epoch == epoch {
        return Vec::new();
    }
    invalidate_stale(mag, epoch)
}

#[cold]
fn invalidate_stale<T>(mag: &mut Magazine<T>, epoch: u64) -> Vec<PoolBox<T>> {
    mag.epoch = epoch;
    mag.reserve = None; // uninitialized slots: releasing them runs no user code
    if mag.items.is_empty() {
        return Vec::new();
    }
    let stale: Vec<PoolBox<T>> = mag.items.drain(..).collect();
    // Recorded here rather than at the call sites: this branch is already
    // cold and call-heavy, so the event costs nothing on the fast paths.
    pool_event!(EpochInvalidation, stale.len());
    stale
}

/// Keep a popped-and-emptied node as the magazine's spare shell, or return
/// it to the depot's free-node stack if a spare is already parked.
fn recycle_node<T>(mag: &mut Magazine<T>, depot: &Depot<T>, node: NonNull<DepotNode<T>>) {
    if mag.spare.is_none() {
        mag.spare = Some(node);
    } else {
        depot.free_nodes.push(node);
    }
}

/// Pop one cached object — the lock-free acquire hit path. `None` means the
/// magazine is empty and the caller should try the depot.
pub(crate) fn pop<T: 'static>(depot: &Arc<Depot<T>>) -> Option<PoolBox<T>> {
    let (obj, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        let obj = mag.items.pop();
        mag.hits += obj.is_some() as u64;
        (obj, stale)
    });
    if obj.is_some() {
        depot.guard.record_unpark();
    }
    depot.guard.record_reclaim(stale.len());
    drop(stale); // outside the borrow: destructors may re-enter pool code
    obj
}

/// Swap the (empty) magazine for a full one parked on the depot: one CAS
/// pop plus a `Vec` swap, no locks, no per-object moves. Returns the first
/// object out of the swapped-in magazine, or `None` when the depot had
/// nothing valid. Nodes parked before the last trim are recognized by
/// their stale epoch and their contents dropped (epoch invalidation
/// extends to parked magazines).
pub(crate) fn depot_swap<T: 'static>(depot: &Arc<Depot<T>>) -> Option<PoolBox<T>> {
    if depot.depot_empty_hint() {
        return None;
    }
    let (obj, stale) = with_magazine(depot, |mag| {
        let mut stale = invalidate_if_stale(mag, depot);
        let mut got = None;
        let mut forced_retry = fault::retry_depot();
        while let Some(node_ptr) = depot.pop_full(mag.shard) {
            if forced_retry {
                // Injected CAS race: hand the node straight back and pop
                // again, exercising the version-tag (ABA) protection the
                // way a concurrent winner would.
                forced_retry = false;
                depot.full[mag.shard].push(node_ptr);
                continue;
            }
            if fault::bump_epoch() {
                // Injected trim racing the swap: the epoch moves in the
                // window between pop and validate. The popped node stays
                // valid — its ownership transferred at the pop CAS, exactly
                // as if the swap had completed before the trim began.
                depot.bump_trim_epoch();
            }
            // Owned after a successful pop; the depot keeps it allocated.
            let node = unsafe { &mut *node_ptr.as_ptr() };
            let n = node.items.len();
            depot.depot_parked.fetch_sub(n, Ordering::Relaxed);
            if node.epoch != mag.epoch {
                stale.append(&mut node.items);
                pool_event!(EpochInvalidation, n);
                recycle_node(mag, depot, node_ptr);
                continue;
            }
            debug_assert!(mag.items.is_empty(), "depot_swap is only called on a miss");
            std::mem::swap(&mut mag.items, &mut node.items);
            recycle_node(mag, depot, node_ptr);
            got = mag.items.pop();
            depot.stats.record_depot_swap();
            pool_event!(DepotSwap, n);
            pool_hist!("pools.depot_swap_objects", n);
            break;
        }
        (got, stale)
    });
    if obj.is_some() {
        depot.guard.record_unpark();
    }
    depot.guard.record_reclaim(stale.len());
    drop(stale);
    obj
}

/// What [`push`] asks the caller to do after the fast path.
pub(crate) enum PushOutcome<T> {
    /// The full magazine was parked on the depot in one CAS — done.
    Parked,
    /// Capped pool: the older half must go through the shard locks (where
    /// the population cap is enforced). `buf` is the magazine's recycled
    /// flush buffer; hand it back with [`restore_flush_buf`] once drained.
    Flush {
        /// Older half of the full magazine.
        buf: Vec<PoolBox<T>>,
        /// Home shard to start parking at.
        shard: usize,
    },
}

/// Cache one released object — the lock-free release path. A full magazine
/// in an uncapped pool parks *whole* on the depot (one CAS); in a capped
/// pool the older half is handed back for the caller to park in a shard.
pub(crate) fn push<T: 'static>(depot: &Arc<Depot<T>>, obj: PoolBox<T>) -> Option<PushOutcome<T>> {
    let (outcome, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        let cap = depot.magazine_cap;
        let outcome = if mag.items.len() < cap {
            None
        } else if fault::delay_flush() {
            // Injected flush delay: skip the park/flush once. The magazine
            // runs past capacity; the next release sees it full again and
            // handles the (now larger) overflow through the normal paths,
            // which tolerate any length ≥ cap.
            None
        } else if depot.depot_enabled {
            // Park the whole magazine: swap its Vec into an empty node
            // shell and CAS the node onto the home shard's stack. The
            // magazine continues with the node's (empty) Vec, so the two
            // buffers ping-pong and no allocation happens in steady state.
            let n = mag.items.len();
            let node_ptr = mag.spare.take().unwrap_or_else(|| depot.alloc_node());
            let node = unsafe { &mut *node_ptr.as_ptr() };
            debug_assert!(node.items.is_empty(), "spare/free nodes are empty shells");
            std::mem::swap(&mut node.items, &mut mag.items);
            node.epoch = mag.epoch;
            depot.depot_parked.fetch_add(n, Ordering::Relaxed);
            depot.full[mag.shard].push(node_ptr);
            depot.stats.record_depot_park();
            pool_event!(DepotPark, n);
            pool_hist!("pools.depot_park_objects", n);
            Some(PushOutcome::Parked)
        } else {
            // Keep the newest (cache-warm) half, flush the rest through
            // the shard locks. `cap` is at least 1 here, so at least one
            // slot frees up. The buffer is recycled across overflows.
            let keep = (cap - cap / 2).min(cap - 1);
            let split = mag.items.len() - keep;
            let mut buf = std::mem::take(&mut mag.flush_buf);
            buf.extend(mag.items.drain(..split));
            Some(PushOutcome::Flush { buf, shard: mag.shard })
        };
        mag.items.push(obj);
        mag.releases += 1;
        (outcome, stale)
    });
    depot.guard.record_park();
    depot.guard.record_reclaim(stale.len());
    drop(stale);
    outcome
}

/// Return the (drained) flush buffer after a [`PushOutcome::Flush`], so the
/// next overflow reuses its capacity instead of allocating.
pub(crate) fn restore_flush_buf<T: 'static>(depot: &Arc<Depot<T>>, buf: Vec<PoolBox<T>>) {
    debug_assert!(buf.is_empty(), "flush buffers come back drained");
    with_magazine_opt(depot, |mag| mag.flush_buf = buf);
}

/// Take one uninitialized slot from the thread's slab reserve, if any.
pub(crate) fn take_reserve_slot<T: 'static>(depot: &Arc<Depot<T>>) -> Option<SlabSlot<T>> {
    let (slot, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        let slot = mag.reserve.as_mut().and_then(SlabReserve::take);
        if mag.reserve.as_ref().is_some_and(SlabReserve::is_exhausted) {
            mag.reserve = None;
        }
        (slot, stale)
    });
    depot.guard.record_reclaim(stale.len());
    drop(stale);
    slot
}

/// Park a freshly carved slab's remaining slots as the thread's reserve.
pub(crate) fn stash_reserve<T: 'static>(depot: &Arc<Depot<T>>, reserve: SlabReserve<T>) {
    let (old, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        (mag.reserve.replace(reserve), stale)
    });
    depot.guard.record_reclaim(stale.len());
    drop(old);
    drop(stale);
}

/// Store objects refilled from shard `shard` in the magazine, and make that
/// shard the new home (the spill-updates-preference arena rule).
pub(crate) fn stash<T: 'static>(depot: &Arc<Depot<T>>, shard: usize, items: Vec<PoolBox<T>>) {
    let stale = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        mag.shard = shard;
        mag.items.extend(items);
        stale
    });
    depot.guard.record_reclaim(stale.len());
    drop(stale);
}

/// The calling thread's home shard for this pool, assigned round-robin on
/// first touch — no hashing, no per-operation map lookup.
pub(crate) fn home_shard<T: 'static>(depot: &Arc<Depot<T>>) -> usize {
    with_magazine(depot, |mag| mag.shard)
}

/// Move the thread's home shard (after a contention spill).
pub(crate) fn set_home_shard<T: 'static>(depot: &Arc<Depot<T>>, shard: usize) {
    with_magazine(depot, |mag| mag.shard = shard);
}

/// Remove and return everything the calling thread has cached for this pool
/// (trim/flush support), dropping its slab reserve too. Does not create a
/// magazine on threads that never touched the pool.
pub(crate) fn drain_local<T: 'static>(depot: &Arc<Depot<T>>) -> Vec<PoolBox<T>> {
    with_magazine_opt(depot, |mag| {
        mag.reserve = None;
        let items: Vec<PoolBox<T>> = mag.items.drain(..).collect();
        items
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depot(shards: usize, cap: usize) -> Arc<Depot<u32>> {
        Arc::new(Depot::new(shards, PoolConfig::default(), cap))
    }

    fn capped_depot(shards: usize, cap: usize, max: usize) -> Arc<Depot<u32>> {
        let config = PoolConfig { max_objects: Some(max), ..Default::default() };
        Arc::new(Depot::new(shards, config, cap))
    }

    #[test]
    fn pop_empty_then_push_then_pop() {
        let d = depot(2, 4);
        assert!(pop(&d).is_none());
        assert!(push(&d, PoolBox::new(7)).is_none());
        assert_eq!(d.magazine_parked(), 1);
        assert_eq!(pop(&d).map(|b| *b), Some(7));
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn overflow_parks_whole_magazine_on_depot() {
        let d = depot(1, 4);
        for i in 0..4 {
            assert!(push(&d, PoolBox::new(i)).is_none());
        }
        match push(&d, PoolBox::new(99)) {
            Some(PushOutcome::Parked) => {}
            _ => panic!("uncapped pool must park on the depot"),
        }
        assert_eq!(d.depot_parked(), 4, "the full magazine moved wholesale");
        assert_eq!(d.magazine_parked(), 1, "the incoming object starts the next one");
        assert_eq!(d.stats.depot_parks(), 1);
    }

    #[test]
    fn depot_swap_returns_parked_magazine() {
        let d = depot(1, 4);
        for i in 0..5 {
            push(&d, PoolBox::new(i)); // fifth push parks [0,1,2,3]
        }
        // Empty the live magazine first (holds only `4`).
        assert_eq!(pop(&d).map(|b| *b), Some(4));
        assert!(pop(&d).is_none());
        let got = depot_swap(&d).expect("a full magazine is parked");
        assert_eq!(*got, 3, "LIFO within the swapped magazine");
        assert_eq!(d.depot_parked(), 0);
        assert_eq!(d.magazine_parked(), 3);
        assert_eq!(d.stats.depot_swaps(), 1);
        for want in [2, 1, 0] {
            assert_eq!(pop(&d).map(|b| *b), Some(want));
        }
    }

    #[test]
    fn capped_pool_flushes_older_half_with_recycled_buffer() {
        let d = capped_depot(1, 4, 64);
        for i in 0..4 {
            assert!(push(&d, PoolBox::new(i)).is_none());
        }
        let Some(PushOutcome::Flush { buf, shard }) = push(&d, PoolBox::new(99)) else {
            panic!("capped pool must flush through the shard locks");
        };
        // Keep = 2 newest + the incoming object; flush the 2 oldest.
        assert_eq!(buf.iter().map(|b| **b).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(d.magazine_parked(), 3);
        let mut buf = buf;
        d.park_batch(shard, &mut buf);
        let capacity = buf.capacity();
        restore_flush_buf(&d, buf);
        assert!(capacity >= 2);
        // Next overflow reuses the same buffer: no fresh capacity needed.
        push(&d, PoolBox::new(100)); // magazine back at cap
        let Some(PushOutcome::Flush { buf, .. }) = push(&d, PoolBox::new(101)) else {
            panic!("second overflow");
        };
        assert_eq!(buf.capacity(), capacity, "flush buffer must be recycled");
    }

    #[test]
    fn cap_one_magazine_never_exceeds_one() {
        let d = depot(1, 1);
        assert!(push(&d, PoolBox::new(1)).is_none());
        assert!(matches!(push(&d, PoolBox::new(2)), Some(PushOutcome::Parked)));
        assert_eq!(d.magazine_parked(), 1);
        assert_eq!(d.depot_parked(), 1);
    }

    #[test]
    fn stale_epoch_drops_cache() {
        let d = depot(1, 8);
        for i in 0..3 {
            push(&d, PoolBox::new(i));
        }
        d.bump_trim_epoch();
        assert!(pop(&d).is_none(), "post-trim cache must not serve");
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn stale_depot_node_is_discarded_on_swap() {
        let d = depot(1, 2);
        for i in 0..3 {
            push(&d, PoolBox::new(i)); // parks [0,1]
        }
        assert_eq!(d.depot_parked(), 2);
        d.bump_trim_epoch();
        // The live magazine invalidates; the parked node's epoch is stale
        // too, so the swap must refuse to serve it.
        assert!(pop(&d).is_none());
        assert!(depot_swap(&d).is_none(), "pre-trim depot magazines must drop");
        assert_eq!(d.depot_parked(), 0);
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn round_robin_home_shards() {
        // Four threads touching a 4-shard depot get four distinct homes.
        let d = depot(4, 8);
        let mut homes: Vec<usize> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || home_shard(&d)).join().unwrap()
            })
            .collect();
        homes.sort_unstable();
        assert_eq!(homes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_exit_flushes_to_shards() {
        let d = depot(2, 8);
        let d2 = Arc::clone(&d);
        std::thread::spawn(move || {
            for i in 0..5 {
                push(&d2, PoolBox::new(i));
            }
        })
        .join()
        .unwrap();
        assert_eq!(d.magazine_parked(), 0, "exited thread's cache must flush");
        let shard_total: usize = d.shards.iter().map(ObjectPool::len).sum();
        assert_eq!(shard_total, 5, "flushed objects land in the shards");
        assert_eq!(d.shard_parked(), 5, "the batch path counts the flush");
    }

    #[test]
    fn drain_local_does_not_create_magazines() {
        let d = depot(1, 8);
        assert!(drain_local(&d).is_empty());
        push(&d, PoolBox::new(1));
        assert_eq!(drain_local(&d).len(), 1);
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn fold_survives_park_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                if !std::thread::panicking() {
                    panic!("bomb: destructor panics during park");
                }
            }
        }

        // Zero-capacity pool: parking rejects everything, and dropping the
        // rejected Bomb panics in the middle of `park_batch`.
        let config = PoolConfig { max_objects: Some(0), ..Default::default() };
        let d: Arc<Depot<Bomb>> = Arc::new(Depot::new(1, config, 4));
        let cells = Arc::new(MagCells::default());
        d.mag_counts.lock().push(Arc::clone(&cells));
        d.guard.record_park(); // the hand-built magazine below caches one object
        let mag = Magazine {
            depot: Arc::downgrade(&d),
            items: vec![PoolBox::new(Bomb)],
            cells,
            hits: 5,
            releases: 7,
            shard: 0,
            epoch: 0,
            spare: None,
            flush_buf: Vec::new(),
            reserve: None,
        };
        assert!(catch_unwind(AssertUnwindSafe(|| drop(mag))).is_err());
        // The panic unwound out of `park_batch`, but the locally-counted
        // hits and releases must have folded into the shared stats anyway,
        // and the magazine's counter cell must be retired.
        assert_eq!(d.stats.pool_hits(), 5);
        assert_eq!(d.stats.releases(), 7);
        assert!(d.mag_counts.lock().is_empty(), "cell must retire despite the panic");
    }

    #[test]
    fn reserve_slots_hand_out_distinct_objects() {
        let d = depot(1, 4);
        assert!(take_reserve_slot(&d).is_none());
        let mut reserve = SlabReserve::carve(d.slab_objects).expect("u32 slab");
        let first = reserve.take().unwrap().fill(10);
        stash_reserve(&d, reserve);
        let second = take_reserve_slot(&d).expect("stashed reserve").fill(20);
        assert_eq!((*first, *second), (10, 20));
        // A trim clears the reserve along with the cache.
        d.bump_trim_epoch();
        assert!(take_reserve_slot(&d).is_none());
    }
}
