//! Thread-local magazines: the lock-free fast path in front of a sharded
//! pool (the tcmalloc/Hoard thread-cache idea applied to object pools).
//!
//! Each thread keeps a small bounded cache — a *magazine* — of parked
//! objects per pool. Steady-state acquire/release is a thread-local vector
//! pop/push: no mutex, no hash lookup. Shard locks are only taken to refill
//! an empty magazine or flush a full one, moving roughly `cap/2` objects per
//! lock acquisition, so the amortized locking cost per operation drops by
//! the batch factor (and to zero in the common acquire-hit/release-park
//! case).
//!
//! Invariants the rest of the crate (and the stress tests) rely on:
//!
//! * every object is in exactly one place at any time — held by a caller,
//!   cached in one magazine, or parked in one shard free list;
//! * [`Depot::magazine_parked`] equals the summed size of all live
//!   magazines, so `ShardedPool::len()` is accurate without reaching into
//!   other threads' caches;
//! * a thread's magazines flush back to the shards when the thread exits
//!   (TLS destructor), so no object leaks and `trim` can still reclaim it;
//! * `trim` drains the *calling* thread's magazine and bumps
//!   [`Depot::trim_epoch`]; other threads observe the stale epoch on their
//!   next operation and drop their cached objects lazily (a trim cannot
//!   safely touch another thread's `RefCell`).

use crate::limits::PoolConfig;
use crate::object_pool::ObjectPool;
use crate::obs::pool_event;
use crate::stats::PoolStats;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Default objects a magazine may hold (per thread, per pool).
pub const DEFAULT_MAGAZINE_CAP: usize = 32;

/// Pool ids double as thread-local slot indices, so they are never reused.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's magazines, indexed by pool id. `dyn Any` erases the
    /// pooled object type; a slot is only ever written by the pool owning
    /// that id, so the downcast always succeeds.
    static MAGAZINES: RefCell<Vec<Option<Box<dyn Any>>>> = const { RefCell::new(Vec::new()) };
}

/// The shared half of a magazine-fronted pool: the shard array plus the
/// counters magazines coordinate through.
#[derive(Debug)]
pub(crate) struct Depot<T> {
    id: u64,
    pub(crate) shards: Box<[ObjectPool<T>]>,
    /// Objects a magazine may hold; 0 disables magazines (direct mode).
    pub(crate) magazine_cap: usize,
    /// Round-robin cursor assigning home shards to new magazines — the
    /// one-time replacement for hashing the thread id on every operation.
    next_shard: AtomicUsize,
    /// Bumped by `trim`; magazines with an older epoch discard their cache.
    trim_epoch: AtomicU64,
    /// Objects currently cached in magazines, across all threads.
    magazine_parked: AtomicUsize,
    /// Hits/fresh/releases recorded by the magazine fast path (shard-level
    /// stats only see batch lock traffic).
    pub(crate) stats: PoolStats,
}

impl<T> Depot<T> {
    pub(crate) fn new(shards: usize, config: PoolConfig, magazine_cap: usize) -> Self {
        assert!(shards >= 1, "a sharded pool needs at least one shard");
        Depot {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            shards: (0..shards).map(|_| ObjectPool::with_config(config)).collect(),
            magazine_cap,
            next_shard: AtomicUsize::new(0),
            trim_epoch: AtomicU64::new(0),
            magazine_parked: AtomicUsize::new(0),
            stats: PoolStats::new(),
        }
    }

    /// Objects cached in magazines across all threads.
    pub(crate) fn magazine_parked(&self) -> usize {
        self.magazine_parked.load(Ordering::Relaxed)
    }

    /// Invalidate every thread's magazine for this pool. Remote threads
    /// notice on their next operation and drop their cache.
    pub(crate) fn bump_trim_epoch(&self) {
        self.trim_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Park `items` into shards starting at `start`, spilling to the next
    /// shard on lock contention (ptmalloc's arena rule), blocking on the
    /// home shard if every shard is contended.
    pub(crate) fn park_batch(&self, start: usize, items: &mut Vec<Box<T>>) {
        let n = self.shards.len();
        for off in 0..n {
            let idx = (start + off) % n;
            if self.shards[idx].try_put_batch(items).is_ok() {
                return;
            }
        }
        self.shards[start].put_batch(items);
    }

    /// Move up to `max` objects into `out` from the first shard that has
    /// any, probing each shard once starting at `start` (empty and
    /// contended shards are skipped). Returns the shard that supplied the
    /// batch. When every shard was visited and nothing was found, `out`
    /// stays empty and the caller allocates fresh; if *all* shards were
    /// contended the refill blocks on the home shard instead (ptmalloc
    /// ultimately waits too).
    pub(crate) fn refill_batch(&self, start: usize, max: usize, out: &mut Vec<Box<T>>) -> usize {
        let n = self.shards.len();
        let mut all_contended = true;
        for off in 0..n {
            let idx = (start + off) % n;
            match self.shards[idx].try_take_batch(max, out) {
                Ok(k) if k > 0 => return idx,
                Ok(_) => all_contended = false, // unlocked but empty
                Err(()) => {}
            }
        }
        if all_contended {
            self.shards[start].take_batch(max, out);
        }
        start
    }
}

/// One thread's cache of parked objects for one pool.
pub(crate) struct Magazine<T> {
    depot: Weak<Depot<T>>,
    items: Vec<Box<T>>,
    /// Home shard for refills and flushes.
    shard: usize,
    /// Copy of [`Depot::trim_epoch`] from the last (in)validation.
    epoch: u64,
}

impl<T> Drop for Magazine<T> {
    fn drop(&mut self) {
        // Thread exit (TLS teardown): hand cached objects back to the
        // shards so they stay reachable by `trim` instead of leaking. If
        // the pool itself is already gone, the objects simply drop.
        if self.items.is_empty() {
            return;
        }
        if let Some(depot) = self.depot.upgrade() {
            depot.magazine_parked.fetch_sub(self.items.len(), Ordering::Relaxed);
            let mut items = std::mem::take(&mut self.items);
            depot.park_batch(self.shard, &mut items);
        }
    }
}

/// Run `f` on the calling thread's magazine for `depot`, creating it on
/// first touch (home shard assigned round-robin).
///
/// `f` must not run user code (constructors, destructors) — the thread-local
/// registry is borrowed for its duration, and a pooled type whose `Drop`
/// touches another pool would otherwise re-enter the borrow.
fn with_magazine<T: 'static, R>(depot: &Arc<Depot<T>>, f: impl FnOnce(&mut Magazine<T>) -> R) -> R {
    let idx = depot.id as usize;
    MAGAZINES.with(|slots| {
        let mut slots = slots.borrow_mut();
        if slots.len() <= idx {
            slots.resize_with(idx + 1, || None);
        }
        let slot = &mut slots[idx];
        if slot.is_none() {
            let shard = depot.next_shard.fetch_add(1, Ordering::Relaxed) % depot.shards.len();
            *slot = Some(Box::new(Magazine {
                depot: Arc::downgrade(depot),
                items: Vec::with_capacity(depot.magazine_cap),
                shard,
                epoch: depot.trim_epoch.load(Ordering::Relaxed),
            }));
        }
        let mag = slot
            .as_mut()
            .expect("slot was just filled")
            .downcast_mut::<Magazine<T>>()
            .expect("pool ids are never reused, so the slot type matches");
        f(mag)
    })
}

/// Like [`with_magazine`] but without creating a missing magazine.
fn with_magazine_opt<T: 'static, R>(
    depot: &Arc<Depot<T>>,
    f: impl FnOnce(&mut Magazine<T>) -> R,
) -> Option<R> {
    let idx = depot.id as usize;
    MAGAZINES.with(|slots| {
        let mut slots = slots.borrow_mut();
        let mag = slots
            .get_mut(idx)?
            .as_mut()?
            .downcast_mut::<Magazine<T>>()
            .expect("pool ids are never reused, so the slot type matches");
        Some(f(mag))
    })
}

/// If a trim happened since this magazine last looked, surrender the cached
/// objects (returned for the caller to drop outside the TLS borrow).
fn invalidate_if_stale<T>(mag: &mut Magazine<T>, depot: &Depot<T>) -> Vec<Box<T>> {
    let epoch = depot.trim_epoch.load(Ordering::Relaxed);
    if mag.epoch == epoch {
        return Vec::new();
    }
    mag.epoch = epoch;
    if mag.items.is_empty() {
        return Vec::new();
    }
    depot.magazine_parked.fetch_sub(mag.items.len(), Ordering::Relaxed);
    let stale: Vec<Box<T>> = mag.items.drain(..).collect();
    // Recorded here rather than at the call sites: this branch is already
    // cold and call-heavy, so the event costs nothing on the fast paths.
    pool_event!(EpochInvalidation, stale.len());
    stale
}

/// Pop one cached object — the lock-free acquire hit path. `None` means the
/// magazine is empty and the caller should refill from a shard.
pub(crate) fn pop<T: 'static>(depot: &Arc<Depot<T>>) -> Option<Box<T>> {
    let (obj, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        let obj = mag.items.pop();
        if obj.is_some() {
            depot.magazine_parked.fetch_sub(1, Ordering::Relaxed);
        }
        (obj, stale)
    });
    drop(stale); // outside the borrow: destructors may re-enter pool code
    obj
}

/// What [`push`] asks the caller to do after the fast path.
pub(crate) struct PushOutcome<T> {
    /// Older half of a full magazine, to be parked in the shards.
    pub overflow: Vec<Box<T>>,
    /// Home shard to start parking at.
    pub shard: usize,
}

/// Cache one released object — the lock-free release path. When the
/// magazine is full, the older half is handed back for the caller to park
/// in a shard (one lock per `cap/2` releases).
pub(crate) fn push<T: 'static>(depot: &Arc<Depot<T>>, obj: Box<T>) -> Option<PushOutcome<T>> {
    let (outcome, stale) = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        let cap = depot.magazine_cap;
        let overflow: Vec<Box<T>> = if mag.items.len() >= cap {
            // Keep the newest (cache-warm) half, flush the rest. `cap` is
            // at least 1 here, so at least one slot frees up.
            let keep = (cap - cap / 2).min(cap - 1);
            let flush: Vec<Box<T>> = mag.items.drain(..mag.items.len() - keep).collect();
            depot.magazine_parked.fetch_sub(flush.len(), Ordering::Relaxed);
            flush
        } else {
            Vec::new()
        };
        mag.items.push(obj);
        depot.magazine_parked.fetch_add(1, Ordering::Relaxed);
        let outcome = (!overflow.is_empty()).then_some(PushOutcome { overflow, shard: mag.shard });
        (outcome, stale)
    });
    drop(stale);
    outcome
}

/// Store objects refilled from shard `shard` in the magazine, and make that
/// shard the new home (the spill-updates-preference arena rule).
pub(crate) fn stash<T: 'static>(depot: &Arc<Depot<T>>, shard: usize, items: Vec<Box<T>>) {
    let stale = with_magazine(depot, |mag| {
        let stale = invalidate_if_stale(mag, depot);
        mag.shard = shard;
        depot.magazine_parked.fetch_add(items.len(), Ordering::Relaxed);
        mag.items.extend(items);
        stale
    });
    drop(stale);
}

/// The calling thread's home shard for this pool, assigned round-robin on
/// first touch — no hashing, no per-operation map lookup.
pub(crate) fn home_shard<T: 'static>(depot: &Arc<Depot<T>>) -> usize {
    with_magazine(depot, |mag| mag.shard)
}

/// Move the thread's home shard (after a contention spill).
pub(crate) fn set_home_shard<T: 'static>(depot: &Arc<Depot<T>>, shard: usize) {
    with_magazine(depot, |mag| mag.shard = shard);
}

/// Remove and return everything the calling thread has cached for this pool
/// (trim/flush support). Does not create a magazine on threads that never
/// touched the pool.
pub(crate) fn drain_local<T: 'static>(depot: &Arc<Depot<T>>) -> Vec<Box<T>> {
    with_magazine_opt(depot, |mag| {
        let items: Vec<Box<T>> = mag.items.drain(..).collect();
        depot.magazine_parked.fetch_sub(items.len(), Ordering::Relaxed);
        items
    })
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depot(shards: usize, cap: usize) -> Arc<Depot<u32>> {
        Arc::new(Depot::new(shards, PoolConfig::default(), cap))
    }

    #[test]
    fn pop_empty_then_push_then_pop() {
        let d = depot(2, 4);
        assert!(pop(&d).is_none());
        assert!(push(&d, Box::new(7)).is_none());
        assert_eq!(d.magazine_parked(), 1);
        assert_eq!(pop(&d).map(|b| *b), Some(7));
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn push_overflow_returns_older_half() {
        let d = depot(1, 4);
        for i in 0..4 {
            assert!(push(&d, Box::new(i)).is_none());
        }
        let out = push(&d, Box::new(99)).expect("5th push must overflow");
        // Keep = 2 newest + the incoming object; flush the 2 oldest.
        assert_eq!(out.overflow.iter().map(|b| **b).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(d.magazine_parked(), 3);
    }

    #[test]
    fn cap_one_magazine_never_exceeds_one() {
        let d = depot(1, 1);
        assert!(push(&d, Box::new(1)).is_none());
        let out = push(&d, Box::new(2)).expect("second push overflows");
        assert_eq!(out.overflow.len(), 1);
        assert_eq!(d.magazine_parked(), 1);
    }

    #[test]
    fn stale_epoch_drops_cache() {
        let d = depot(1, 8);
        for i in 0..3 {
            push(&d, Box::new(i));
        }
        d.bump_trim_epoch();
        assert!(pop(&d).is_none(), "post-trim cache must not serve");
        assert_eq!(d.magazine_parked(), 0);
    }

    #[test]
    fn round_robin_home_shards() {
        // Four threads touching a 4-shard depot get four distinct homes.
        let d = depot(4, 8);
        let mut homes: Vec<usize> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || home_shard(&d)).join().unwrap()
            })
            .collect();
        homes.sort_unstable();
        assert_eq!(homes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_exit_flushes_to_shards() {
        let d = depot(2, 8);
        let d2 = Arc::clone(&d);
        std::thread::spawn(move || {
            for i in 0..5 {
                push(&d2, Box::new(i));
            }
        })
        .join()
        .unwrap();
        assert_eq!(d.magazine_parked(), 0, "exited thread's cache must flush");
        let shard_total: usize = d.shards.iter().map(ObjectPool::len).sum();
        assert_eq!(shard_total, 5, "flushed objects land in the shards");
    }

    #[test]
    fn drain_local_does_not_create_magazines() {
        let d = depot(1, 8);
        assert!(drain_local(&d).is_empty());
        push(&d, Box::new(1));
        assert_eq!(drain_local(&d).len(), 1);
        assert_eq!(d.magazine_parked(), 0);
    }
}
