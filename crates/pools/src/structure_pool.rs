//! Structure pools: free lists whose reusable unit is a whole *object
//! structure* — a root object keeping its references to children intact
//! (§2.1 of the paper).
//!
//! Compared to a per-class object pool, acquiring a `Car` from a structure
//! pool yields the complete car with engine, wheels and chassis in **one**
//! pool operation instead of one per sub-object. The
//! [`Reusable`] trait supplies the two member functions handmade pools add
//! to every class (§3.1): `recycle` (the `destroy()` replacement for the
//! destructor) and `reinit` (the `init()` replacement for the constructor).
//!
//! Both layouts route `alloc` through their inner pool's acquire entry, so
//! under the `fault-inject` feature an injected allocation failure degrades
//! to a plain heap structure there (see [`crate::fault`]) — `alloc` never
//! fails and never panics, whatever the fault schedule.

use crate::limits::PoolConfig;
use crate::object_pool::ObjectPool;
use crate::pool_box::PoolBox;
use crate::sharded::ShardedPool;
use crate::stats::StatsSnapshot;

/// Implemented by types whose instances can be parked and revived with
/// their internal structure intact.
pub trait Reusable {
    /// The parameters `init()` takes (e.g. `numberOfWheels` for a `Car`).
    type Params;

    /// Build a fresh structure on the heap (the pool-miss path).
    fn fresh(params: &Self::Params) -> Self;

    /// Re-initialize a parked structure for new use (the pool-hit path).
    /// Must leave `self` indistinguishable from `Self::fresh(params)` from
    /// the caller's point of view, while reusing as much of the existing
    /// structure as possible.
    fn reinit(&mut self, params: &Self::Params);

    /// Release external resources (files, sockets) before parking — the
    /// `destroy()` of handmade pools. Memory and child links must be kept.
    fn recycle(&mut self) {}
}

/// The free-list strategy behind a [`StructurePool`].
#[derive(Debug)]
enum Backend<T: Reusable> {
    /// One shared LIFO free list (the single-threaded/default layout).
    Plain(ObjectPool<T>),
    /// Sharded free lists behind thread-local magazines — the layout
    /// Amplify's threaded builds use (§3.2 plus the thread-cache fast
    /// path).
    Sharded(ShardedPool<T>),
}

/// A thread-safe pool of whole structures.
#[derive(Debug)]
pub struct StructurePool<T: Reusable> {
    inner: Backend<T>,
}

impl<T: Reusable> Default for StructurePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Reusable> StructurePool<T> {
    /// An empty, unbounded structure pool.
    pub fn new() -> Self {
        StructurePool { inner: Backend::Plain(ObjectPool::new()) }
    }

    /// An empty structure pool with limits.
    pub fn with_config(config: PoolConfig) -> Self {
        StructurePool { inner: Backend::Plain(ObjectPool::with_config(config)) }
    }

    /// An empty structure pool sharded over `shards` free lists with
    /// thread-local magazines in front — the configuration for structures
    /// allocated and freed concurrently from many threads.
    pub fn new_sharded(shards: usize) -> Self
    where
        T: 'static,
    {
        StructurePool { inner: Backend::Sharded(ShardedPool::new(shards)) }
    }

    /// A sharded structure pool with per-shard limits.
    pub fn with_sharded_config(shards: usize, config: PoolConfig) -> Self
    where
        T: 'static,
    {
        StructurePool { inner: Backend::Sharded(ShardedPool::with_config(shards, config)) }
    }

    /// A sharded structure pool with an explicit per-thread magazine
    /// capacity; `magazine_cap == 0` disables the thread caches and yields
    /// bare try-lock-and-spill sharding (the pre-magazine Amplify layout,
    /// kept as a comparison backend).
    pub fn new_sharded_with_magazines(
        shards: usize,
        config: PoolConfig,
        magazine_cap: usize,
    ) -> Self
    where
        T: 'static,
    {
        StructurePool {
            inner: Backend::Sharded(ShardedPool::with_magazines(shards, config, magazine_cap)),
        }
    }
}

impl<T: Reusable + 'static> StructurePool<T> {
    /// Allocate a structure: one pool access regardless of how many
    /// sub-objects the structure contains.
    pub fn alloc(&self, params: &T::Params) -> PoolBox<T> {
        match &self.inner {
            Backend::Plain(p) => p.acquire_with(|| T::fresh(params), |t| t.reinit(params)),
            Backend::Sharded(s) => s.acquire_with(|| T::fresh(params), |t| t.reinit(params)),
        }
    }

    /// Free a structure: run `recycle` (the destructor chain) and park the
    /// whole thing, links intact.
    pub fn free(&self, structure: impl Into<PoolBox<T>>) {
        let mut structure = structure.into();
        structure.recycle();
        match &self.inner {
            Backend::Plain(p) => p.release(structure),
            Backend::Sharded(s) => s.release(structure),
        }
    }

    /// Number of parked structures (including magazine contents when
    /// sharded).
    pub fn len(&self) -> usize {
        match &self.inner {
            Backend::Plain(p) => p.len(),
            Backend::Sharded(s) => s.len(),
        }
    }

    /// True if no structures are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all parked structures.
    pub fn trim(&self) -> usize {
        match &self.inner {
            Backend::Plain(p) => p.trim(),
            Backend::Sharded(s) => s.trim(),
        }
    }

    /// Pool statistics (aggregated across shards and magazines when
    /// sharded).
    pub fn stats(&self) -> StatsSnapshot {
        match &self.inner {
            Backend::Plain(p) => p.stats().snapshot(),
            Backend::Sharded(s) => s.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the paper's Figure 1 car: a root with nested
    /// heap-allocated parts.
    #[derive(Debug)]
    struct Car {
        // Boxed on purpose: tests assert wheel *addresses* survive reuse.
        #[allow(clippy::vec_box)]
        wheels: Vec<Box<Wheel>>,
        engine: Option<Box<Engine>>,
        doors: u32,
    }

    #[derive(Debug)]
    struct Wheel {
        #[allow(dead_code)] // payload only; tests assert on identity
        radius: u32,
    }

    #[derive(Debug)]
    struct Engine {
        name: String,
    }

    struct CarParams {
        wheels: usize,
        engine: &'static str,
        doors: u32,
    }

    impl Reusable for Car {
        type Params = CarParams;

        fn fresh(p: &CarParams) -> Self {
            Car {
                wheels: (0..p.wheels).map(|_| Box::new(Wheel { radius: 16 })).collect(),
                engine: Some(Box::new(Engine { name: p.engine.to_string() })),
                doors: p.doors,
            }
        }

        fn reinit(&mut self, p: &CarParams) {
            // Reuse existing wheels; adjust the count if it differs (the
            // "overhead of reorganizing the structure" — §3.2).
            while self.wheels.len() > p.wheels {
                self.wheels.pop();
            }
            while self.wheels.len() < p.wheels {
                self.wheels.push(Box::new(Wheel { radius: 16 }));
            }
            match &mut self.engine {
                Some(e) => {
                    e.name.clear();
                    e.name.push_str(p.engine);
                }
                none => *none = Some(Box::new(Engine { name: p.engine.to_string() })),
            }
            self.doors = p.doors;
        }

        fn recycle(&mut self) {
            // Nothing external to release; structure is kept as-is.
        }
    }

    #[test]
    fn structure_reuse_is_one_pool_op() {
        let pool: StructurePool<Car> = StructurePool::new();
        let p = CarParams { wheels: 4, engine: "V8", doors: 5 };
        let car = pool.alloc(&p);
        assert_eq!(car.wheels.len(), 4);
        pool.free(car);
        let car2 = pool.alloc(&p);
        assert_eq!(pool.stats().pool_hits(), 1);
        assert_eq!(pool.stats().fresh_allocs(), 1);
        assert_eq!(car2.wheels.len(), 4);
        assert_eq!(car2.engine.as_ref().unwrap().name, "V8");
    }

    #[test]
    fn child_allocations_survive_reuse() {
        let pool: StructurePool<Car> = StructurePool::new();
        let p = CarParams { wheels: 2, engine: "I4", doors: 3 };
        let car = pool.alloc(&p);
        let wheel_addr = &*car.wheels[0] as *const Wheel;
        pool.free(car);
        let car2 = pool.alloc(&p);
        // Temporal locality: identical structure → same child allocation.
        assert_eq!(&*car2.wheels[0] as *const Wheel, wheel_addr);
    }

    #[test]
    fn structure_shape_change_reorganizes() {
        let pool: StructurePool<Car> = StructurePool::new();
        let car = pool.alloc(&CarParams { wheels: 8, engine: "V8", doors: 2 });
        pool.free(car);
        let car2 = pool.alloc(&CarParams { wheels: 4, engine: "I4", doors: 5 });
        assert_eq!(car2.wheels.len(), 4);
        assert_eq!(car2.engine.as_ref().unwrap().name, "I4");
        assert_eq!(car2.doors, 5);
        assert_eq!(pool.stats().pool_hits(), 1);
    }

    #[test]
    fn pool_cap_applies_to_structures() {
        let pool: StructurePool<Car> =
            StructurePool::with_config(PoolConfig { max_objects: Some(1), ..Default::default() });
        let p = CarParams { wheels: 1, engine: "E", doors: 1 };
        let a = pool.alloc(&p);
        let b = pool.alloc(&p);
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().dropped(), 1);
    }

    #[test]
    fn sharded_backend_reuses_whole_structures() {
        let pool: StructurePool<Car> = StructurePool::new_sharded(2);
        let p = CarParams { wheels: 4, engine: "V8", doors: 5 };
        let car = pool.alloc(&p);
        pool.free(car);
        let car2 = pool.alloc(&p);
        assert_eq!(pool.stats().pool_hits(), 1);
        assert_eq!(car2.wheels.len(), 4);
        pool.free(car2);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.trim(), 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn trim_returns_memory() {
        let pool: StructurePool<Car> = StructurePool::new();
        let p = CarParams { wheels: 4, engine: "V8", doors: 5 };
        let car = pool.alloc(&p);
        pool.free(car);
        assert_eq!(pool.trim(), 1);
        assert!(pool.is_empty());
    }
}
