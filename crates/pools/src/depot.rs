//! The magazine depot's lock-free core: Treiber stacks of *whole full
//! magazines*, exchanged in one CAS (Bonwick's depot layer from the
//! Solaris slab allocator).
//!
//! A [`DepotNode`] is a parked magazine: a `Vec` of objects plus the trim
//! epoch it was parked under. Nodes live on per-shard [`MagStack`]s; an
//! empty thread magazine pops a node and `mem::swap`s vectors with it —
//! O(1) regardless of magazine capacity — instead of locking a shard and
//! draining boxes one at a time.
//!
//! Two classic lock-free hazards, and how this module sidesteps them:
//!
//! * **ABA**: the stack head packs a 16-bit version tag into the pointer's
//!   unused high bits (x86-64/AArch64 use 48-bit virtual addresses; the
//!   push path `debug_assert`s this). Every successful CAS bumps the tag,
//!   so a head that was popped and re-pushed between a reader's load and
//!   its CAS no longer compares equal.
//! * **Use-after-free on `node.next`**: nodes are *type-stable* — once
//!   allocated for a depot they are never freed while the depot lives.
//!   Emptied nodes recycle through a free-node stack; every node ever
//!   allocated is remembered in a registry and freed only when the depot
//!   (sole owner by then) drops. A racing `pop` may read `next` from a
//!   node another thread already took, but the read hits live memory and
//!   the stale value is rejected by the tag CAS.

use crate::pool_box::PoolBox;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const TAG_SHIFT: u32 = 48;
const PTR_MASK: u64 = (1 << TAG_SHIFT) - 1;
const TAG_ONE: u64 = 1 << TAG_SHIFT;

/// One parked magazine (or a recycled, empty shell awaiting reuse).
#[derive(Debug)]
pub(crate) struct DepotNode<T> {
    /// The parked objects. Empty iff the node sits on the free-node stack
    /// or rides along as a thread's spare shell.
    pub(crate) items: Vec<PoolBox<T>>,
    /// [`Depot::trim_epoch`](crate::magazine::Depot) value at park time; a
    /// mismatch on pop means a trim intervened and the contents must drop.
    pub(crate) epoch: u64,
    /// Intrusive link, written only while the owner prepares a push.
    next: AtomicUsize,
}

impl<T> DepotNode<T> {
    pub(crate) fn new() -> Self {
        DepotNode { items: Vec::new(), epoch: 0, next: AtomicUsize::new(0) }
    }
}

/// A Treiber stack of [`DepotNode`]s with a version-tagged head.
#[derive(Debug)]
pub(crate) struct MagStack<T> {
    /// Bits 0..48: node address (0 = empty). Bits 48..64: version tag.
    head: AtomicU64,
    _marker: PhantomData<*mut DepotNode<T>>,
}

// Only raw node addresses cross threads here; node *ownership* transfers
// through successful CASes, and object thread-safety is PoolBox's concern.
unsafe impl<T> Send for MagStack<T> {}
unsafe impl<T> Sync for MagStack<T> {}

impl<T> MagStack<T> {
    pub(crate) fn new() -> Self {
        MagStack { head: AtomicU64::new(0), _marker: PhantomData }
    }

    /// Push a node the caller owns. Lock-free; never fails.
    pub(crate) fn push(&self, node: NonNull<DepotNode<T>>) {
        let ptr_bits = node.as_ptr() as u64;
        debug_assert_eq!(ptr_bits & !PTR_MASK, 0, "node address exceeds 48 bits");
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // We still own the node: plain store of the link is fine.
            unsafe { node.as_ref() }.next.store((head & PTR_MASK) as usize, Ordering::Relaxed);
            let tagged = ptr_bits | (head & !PTR_MASK).wrapping_add(TAG_ONE);
            match self.head.compare_exchange_weak(
                head,
                tagged,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Pop the top node, taking ownership of it. `None` when empty.
    pub(crate) fn pop(&self) -> Option<NonNull<DepotNode<T>>> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let node = NonNull::new((head & PTR_MASK) as *mut DepotNode<T>)?;
            // Nodes are type-stable, so this read cannot fault even if a
            // rival pop already won the node; the tag CAS below rejects us.
            let next = unsafe { node.as_ref() }.next.load(Ordering::Relaxed) as u64;
            let tagged = (next & PTR_MASK) | (head & !PTR_MASK).wrapping_add(TAG_ONE);
            match self.head.compare_exchange_weak(head, tagged, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(node),
                Err(current) => head = current,
            }
        }
    }

    /// Cheap emptiness probe (one relaxed load; may race, callers only use
    /// it to skip work that a miss would redo anyway).
    pub(crate) fn is_empty_hint(&self) -> bool {
        self.head.load(Ordering::Relaxed) & PTR_MASK == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn leak_node(v: u64) -> NonNull<DepotNode<u64>> {
        let mut node = DepotNode::new();
        node.items.push(PoolBox::new(v));
        NonNull::from(Box::leak(Box::new(node)))
    }

    unsafe fn free_node(n: NonNull<DepotNode<u64>>) {
        drop(unsafe { Box::from_raw(n.as_ptr()) });
    }

    #[test]
    fn lifo_order_and_empty() {
        let s: MagStack<u64> = MagStack::new();
        assert!(s.pop().is_none());
        assert!(s.is_empty_hint());
        let (a, b) = (leak_node(1), leak_node(2));
        s.push(a);
        s.push(b);
        assert!(!s.is_empty_hint());
        let first = s.pop().unwrap();
        assert_eq!(*unsafe { first.as_ref() }.items[0], 2, "LIFO");
        let second = s.pop().unwrap();
        assert_eq!(*unsafe { second.as_ref() }.items[0], 1);
        assert!(s.pop().is_none());
        unsafe {
            free_node(first);
            free_node(second);
        }
    }

    #[test]
    fn concurrent_push_pop_conserves_nodes() {
        let s: Arc<MagStack<u64>> = Arc::new(MagStack::new());
        let threads = 4;
        let per = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        s.push(leak_node(t * 10_000 + i));
                        if let Some(n) = s.pop() {
                            got.push(n.as_ptr() as usize); // NonNull is !Send
                        }
                    }
                    got
                })
            })
            .collect();
        let mut values = Vec::new();
        for h in handles {
            for addr in h.join().unwrap() {
                let n = NonNull::new(addr as *mut DepotNode<u64>).unwrap();
                values.push(*unsafe { n.as_ref() }.items[0]);
                unsafe { free_node(n) };
            }
        }
        while let Some(n) = s.pop() {
            values.push(*unsafe { n.as_ref() }.items[0]);
            unsafe { free_node(n) };
        }
        values.sort_unstable();
        let initial = values.len();
        values.dedup();
        assert_eq!(initial, values.len(), "a node was popped twice");
        assert_eq!(initial as u64, threads * per, "a node was lost");
    }
}
