//! A registry of live pools, for fleet-wide trimming and statistics.
//!
//! The paper's answer to pool memory overhead is "returning memory from
//! the pools to the operating system on demand, or when the pools exceed a
//! certain limit" (§5.1). Per-pool caps live in
//! [`crate::limits::PoolConfig`]; the *on demand* part needs something that
//! can reach every pool — this registry.

use crate::stats::StatsSnapshot;
use parking_lot::Mutex;
use std::sync::{Arc, Weak};

/// Implemented by every pool kind that can be registered.
pub trait Trimmable: Send + Sync {
    /// Drop all parked objects; returns how many were released.
    fn trim(&self) -> usize;
    /// Parked objects currently held.
    fn parked(&self) -> usize;
    /// Statistics snapshot.
    fn snapshot(&self) -> StatsSnapshot;
}

impl<T: Send> Trimmable for crate::object_pool::ObjectPool<T> {
    fn trim(&self) -> usize {
        self.trim()
    }
    fn parked(&self) -> usize {
        self.len()
    }
    fn snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }
}

impl<T: crate::structure_pool::Reusable + Send + 'static> Trimmable
    for crate::structure_pool::StructurePool<T>
where
    T::Params: Sync,
{
    fn trim(&self) -> usize {
        self.trim()
    }
    fn parked(&self) -> usize {
        self.len()
    }
    fn snapshot(&self) -> StatsSnapshot {
        self.stats()
    }
}

impl<T: Send + 'static> Trimmable for crate::sharded::ShardedPool<T> {
    fn trim(&self) -> usize {
        self.trim()
    }
    fn parked(&self) -> usize {
        self.len()
    }
    fn snapshot(&self) -> StatsSnapshot {
        self.stats()
    }
}

/// A set of weakly-held pools. Dropped pools unregister themselves
/// implicitly (their weak references expire).
#[derive(Default)]
pub struct PoolRegistry {
    pools: Mutex<Vec<(String, Weak<dyn Trimmable>)>>,
}

impl PoolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pool under a display name.
    pub fn register(&self, name: impl Into<String>, pool: &Arc<impl Trimmable + 'static>) {
        let weak: Weak<dyn Trimmable> = Arc::downgrade(pool) as Weak<dyn Trimmable>;
        self.pools.lock().push((name.into(), weak));
    }

    /// Number of live registered pools (expired entries are pruned).
    pub fn len(&self) -> usize {
        let mut pools = self.pools.lock();
        pools.retain(|(_, w)| w.strong_count() > 0);
        pools.len()
    }

    /// True if no live pools are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trim every live pool — the "on demand" memory release. Returns the
    /// total number of objects released.
    pub fn trim_all(&self) -> usize {
        let live: Vec<Arc<dyn Trimmable>> = {
            let mut pools = self.pools.lock();
            pools.retain(|(_, w)| w.strong_count() > 0);
            pools.iter().filter_map(|(_, w)| w.upgrade()).collect()
        };
        live.iter().map(|p| p.trim()).sum()
    }

    /// Total parked objects across live pools.
    pub fn total_parked(&self) -> usize {
        let live: Vec<Arc<dyn Trimmable>> = {
            let pools = self.pools.lock();
            pools.iter().filter_map(|(_, w)| w.upgrade()).collect()
        };
        live.iter().map(|p| p.parked()).sum()
    }

    /// Aggregate statistics across live pools.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let live: Vec<Arc<dyn Trimmable>> = {
            let pools = self.pools.lock();
            pools.iter().filter_map(|(_, w)| w.upgrade()).collect()
        };
        let mut agg = StatsSnapshot::default();
        for p in &live {
            agg.merge(&p.snapshot());
        }
        agg
    }

    /// Snapshot every live pool as a `telemetry-v1` pool entry, in
    /// registration order (so reports are deterministic for a fixed
    /// registration sequence). This is how a [`telemetry::Report`] gets its
    /// `pools` section; it works with or without the `telemetry` feature —
    /// the feature only gates hot-path event recording, not the counters.
    pub fn pool_snapshots(&self) -> Vec<telemetry::report::PoolSnapshot> {
        let entries: Vec<(String, Arc<dyn Trimmable>)> = {
            let pools = self.pools.lock();
            pools.iter().filter_map(|(n, w)| w.upgrade().map(|p| (n.clone(), p))).collect()
        };
        entries
            .iter()
            .map(|(name, p)| {
                let s = p.snapshot();
                telemetry::report::PoolSnapshot {
                    name: name.clone(),
                    parked: p.parked() as u64,
                    pool_hits: s.pool_hits(),
                    fresh_allocs: s.fresh_allocs(),
                    releases: s.releases(),
                    dropped: s.dropped(),
                    failed_locks: s.failed_locks(),
                    lock_acquisitions: s.lock_acquisitions(),
                }
            })
            .collect()
    }

    /// Per-pool report lines (`name: parked, hits, misses`).
    pub fn report(&self) -> Vec<String> {
        let entries: Vec<(String, Arc<dyn Trimmable>)> = {
            let pools = self.pools.lock();
            pools.iter().filter_map(|(n, w)| w.upgrade().map(|p| (n.clone(), p))).collect()
        };
        entries
            .iter()
            .map(|(name, p)| {
                let s = p.snapshot();
                format!(
                    "{name}: parked={}, hits={}, fresh={}, dropped={}",
                    p.parked(),
                    s.pool_hits(),
                    s.fresh_allocs(),
                    s.dropped()
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_pool::ObjectPool;

    #[test]
    fn registered_pools_are_trimmed_together() {
        let reg = PoolRegistry::new();
        let a: Arc<ObjectPool<u32>> = Arc::new(ObjectPool::new());
        let b: Arc<ObjectPool<String>> = Arc::new(ObjectPool::new());
        reg.register("ints", &a);
        reg.register("strings", &b);
        for i in 0..5 {
            a.release(Box::new(i));
        }
        b.release(Box::new("x".into()));
        assert_eq!(reg.total_parked(), 6);
        assert_eq!(reg.trim_all(), 6);
        assert_eq!(reg.total_parked(), 0);
    }

    #[test]
    fn dropped_pools_expire() {
        let reg = PoolRegistry::new();
        let a: Arc<ObjectPool<u32>> = Arc::new(ObjectPool::new());
        reg.register("a", &a);
        assert_eq!(reg.len(), 1);
        drop(a);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.trim_all(), 0);
    }

    #[test]
    fn aggregate_stats_merge() {
        let reg = PoolRegistry::new();
        let a: Arc<ObjectPool<u32>> = Arc::new(ObjectPool::new());
        reg.register("a", &a);
        let x = a.acquire(|| 1);
        a.release(x);
        let _y = a.acquire(|| 2);
        let agg = reg.aggregate_stats();
        assert_eq!(agg.pool_hits(), 1);
        assert_eq!(agg.fresh_allocs(), 1);
    }

    #[test]
    fn report_names_pools() {
        let reg = PoolRegistry::new();
        let a: Arc<ObjectPool<u8>> = Arc::new(ObjectPool::new());
        reg.register("bytes", &a);
        a.release(Box::new(0));
        let lines = reg.report();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("bytes: parked=1"));
    }

    #[test]
    fn pool_snapshots_feed_telemetry_reports() {
        let reg = PoolRegistry::new();
        let a: Arc<ObjectPool<u32>> = Arc::new(ObjectPool::new());
        reg.register("nodes", &a);
        let x = a.acquire(|| 1);
        a.release(x);
        let _y = a.acquire(|| 2);
        let snaps = reg.pool_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].name, "nodes");
        assert_eq!(snaps[0].pool_hits, 1);
        assert_eq!(snaps[0].fresh_allocs, 1);
        assert_eq!(snaps[0].releases, 1);
        assert_eq!(snaps[0].parked, 0);
        // The snapshot drops into a report and survives the JSON round trip.
        let mut report = telemetry::Report::new("registry-test");
        report.pools = snaps;
        let back = telemetry::Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.pools[0].pool_hits, 1);
    }

    #[test]
    fn structure_pools_register_too() {
        use crate::structure_pool::{Reusable, StructurePool};
        struct S(u32);
        impl Reusable for S {
            type Params = u32;
            fn fresh(p: &u32) -> Self {
                S(*p)
            }
            fn reinit(&mut self, p: &u32) {
                self.0 = *p;
            }
        }
        let reg = PoolRegistry::new();
        let pool: Arc<StructurePool<S>> = Arc::new(StructurePool::new());
        reg.register("structs", &pool);
        let s = pool.alloc(&1);
        pool.free(s);
        assert_eq!(reg.total_parked(), 1);
        assert_eq!(reg.trim_all(), 1);
    }

    #[test]
    fn sharded_magazines_are_reclaimable_after_thread_exit() {
        use crate::sharded::ShardedPool;
        let reg = PoolRegistry::new();
        let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(2));
        reg.register("sharded", &pool);
        let p = Arc::clone(&pool);
        std::thread::spawn(move || {
            for i in 0..6 {
                p.release(Box::new(i));
            }
        })
        .join()
        .unwrap();
        // The exited thread's magazine flushed back to the shards, so the
        // registry sees every object and trim reclaims all of them.
        assert_eq!(reg.total_parked(), 6);
        assert_eq!(reg.trim_all(), 6);
        assert_eq!(pool.len(), 0);
    }
}
