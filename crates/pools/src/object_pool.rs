//! Per-class object pools: the free list behind Amplify's generated
//! `operator new` / `operator delete`.

use crate::fault;
use crate::limits::PoolConfig;
use crate::obs::pool_hist;
use crate::pool_box::PoolBox;
use crate::stats::PoolStats;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

/// A thread-safe object pool for values of type `T`.
///
/// `acquire` pops a dead object from the free list (a *pool hit*) or builds
/// a fresh one with the supplied closure (a *fresh alloc* — the paper's
/// "only if the free list is empty a new piece of memory is allocated on
/// the heap"). `release` parks the object for later reuse, subject to the
/// [`PoolConfig`] population cap.
#[derive(Debug)]
pub struct ObjectPool<T> {
    free: Mutex<Vec<PoolBox<T>>>,
    config: PoolConfig,
    stats: Arc<PoolStats>,
}

impl<T> Default for ObjectPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ObjectPool<T> {
    /// An empty, unbounded pool. Pools start empty — Amplify performs no
    /// `init()` pre-allocation (§3.2).
    pub fn new() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// An empty pool with explicit limits.
    pub fn with_config(config: PoolConfig) -> Self {
        ObjectPool { free: Mutex::new(Vec::new()), config, stats: Arc::new(PoolStats::new()) }
    }

    /// Take an object from the pool, or build one with `fresh`.
    ///
    /// The returned box keeps whatever state the last release left in it
    /// when served from the pool; callers re-initialize, mirroring the
    /// `init()` discipline of handmade pools.
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> PoolBox<T> {
        if fault::fail_fresh_alloc() {
            return self.acquire_fallback(fresh);
        }
        self.acquire_with_inner(fresh, |_| {}).0
    }

    /// Like [`ObjectPool::acquire`], but re-initializes reused objects with
    /// `reinit` so callers always get a ready object.
    pub fn acquire_with(
        &self,
        fresh: impl FnOnce() -> T,
        reinit: impl FnOnce(&mut T),
    ) -> PoolBox<T> {
        if fault::fail_fresh_alloc() {
            return self.acquire_fallback(fresh);
        }
        self.acquire_with_inner(fresh, reinit).0
    }

    /// [`ObjectPool::acquire_with`] minus the fault-site draw, reporting
    /// whether the object came from the free list. Used by the sharded
    /// blocking fallback, which draws its fault decision at *its* entry —
    /// a second draw here would make the injection schedule depend on
    /// which shards happened to be contended.
    pub(crate) fn acquire_with_inner(
        &self,
        fresh: impl FnOnce() -> T,
        reinit: impl FnOnce(&mut T),
    ) -> (PoolBox<T>, bool) {
        let popped = {
            let mut free = self.free.lock();
            self.stats.record_lock();
            free.pop()
        };
        match popped {
            Some(mut b) => {
                self.stats.record_hit();
                reinit(&mut b);
                (b, true)
            }
            None => {
                self.stats.record_fresh();
                (PoolBox::new(fresh()), false)
            }
        }
    }

    /// Graceful degradation under an injected allocation failure: bypass
    /// the free list entirely and hand back a plain heap object, counted
    /// as a fresh alloc *plus* a fallback (see [`crate::fault`]).
    #[cold]
    fn acquire_fallback(&self, fresh: impl FnOnce() -> T) -> PoolBox<T> {
        self.stats.record_fresh();
        self.stats.record_fallback();
        PoolBox::new(fresh())
    }

    /// Try to take an object without blocking. Returns `Err(())` if the
    /// pool lock is currently held (counted as a failed lock attempt —
    /// the signal ptmalloc-style sharding keys on). The unit error carries
    /// exactly the information there is: "contended, try elsewhere".
    #[allow(clippy::result_unit_err)]
    pub fn try_acquire(&self) -> Result<Option<PoolBox<T>>, ()> {
        match self.free.try_lock() {
            Some(mut free) => {
                self.stats.record_lock();
                match free.pop() {
                    Some(b) => {
                        self.stats.record_hit();
                        Ok(Some(b))
                    }
                    None => Ok(None),
                }
            }
            None => {
                self.stats.record_failed_lock();
                Err(())
            }
        }
    }

    /// Return an object to the free list. If the pool is at its population
    /// cap the object is dropped (freed) instead.
    pub fn release(&self, obj: impl Into<PoolBox<T>>) {
        let obj = obj.into();
        let mut free = self.free.lock();
        self.stats.record_lock();
        if self.config.accepts_object(free.len()) {
            free.push(obj);
            self.stats.record_release();
        } else {
            drop(free);
            self.stats.record_dropped();
            // obj drops here, returning memory to the system allocator —
            // the paper's "returning memory from the pools ... when the
            // pools exceed a certain limit".
        }
    }

    /// Try to return an object without blocking. On lock failure the object
    /// is handed back to the caller.
    pub fn try_release(&self, obj: PoolBox<T>) -> Result<(), PoolBox<T>> {
        match self.free.try_lock() {
            Some(mut free) => {
                self.stats.record_lock();
                if self.config.accepts_object(free.len()) {
                    free.push(obj);
                    self.stats.record_release();
                } else {
                    self.stats.record_dropped();
                }
                Ok(())
            }
            None => {
                self.stats.record_failed_lock();
                Err(obj)
            }
        }
    }

    /// Move up to `max` parked objects into `out` under one lock, taking
    /// from the top of the free list (the most recently released, cache-warm
    /// end). Batch transfers count one lock acquisition and no per-object
    /// hits — the magazine layer does its own hit accounting.
    pub(crate) fn take_batch(&self, max: usize, out: &mut Vec<PoolBox<T>>) -> usize {
        let mut free = self.free.lock();
        self.stats.record_lock();
        let n = max.min(free.len());
        let at = free.len() - n;
        out.extend(free.drain(at..));
        pool_hist!("pools.free_list_len", free.len());
        n
    }

    /// Non-blocking [`ObjectPool::take_batch`]. `Err(())` means the shard
    /// lock is held (recorded as a failed lock attempt).
    #[allow(clippy::result_unit_err)]
    pub(crate) fn try_take_batch(
        &self,
        max: usize,
        out: &mut Vec<PoolBox<T>>,
    ) -> Result<usize, ()> {
        match self.free.try_lock() {
            Some(mut free) => {
                self.stats.record_lock();
                let n = max.min(free.len());
                let at = free.len() - n;
                out.extend(free.drain(at..));
                pool_hist!("pools.free_list_len", free.len());
                Ok(n)
            }
            None => {
                self.stats.record_failed_lock();
                Err(())
            }
        }
    }

    /// Park a whole batch under one lock. Objects over the population cap
    /// are dropped (outside the lock — their destructors may be arbitrary
    /// user code). Returns how many were parked.
    pub(crate) fn put_batch(&self, items: &mut Vec<PoolBox<T>>) -> usize {
        let total = items.len();
        let rejected = {
            let mut free = self.free.lock();
            self.stats.record_lock();
            let rejected = Self::push_until_cap(&self.config, &mut free, items);
            pool_hist!("pools.free_list_len", free.len());
            rejected
        };
        let parked = total - rejected.len();
        if !rejected.is_empty() {
            self.stats.record_dropped_many(rejected.len() as u64);
        }
        drop(rejected);
        parked
    }

    /// Non-blocking [`ObjectPool::put_batch`]. On contention the items stay
    /// in `items` and the caller can spill to another shard.
    #[allow(clippy::result_unit_err)]
    pub(crate) fn try_put_batch(&self, items: &mut Vec<PoolBox<T>>) -> Result<usize, ()> {
        let total = items.len();
        let rejected = match self.free.try_lock() {
            Some(mut free) => {
                self.stats.record_lock();
                let rejected = Self::push_until_cap(&self.config, &mut free, items);
                pool_hist!("pools.free_list_len", free.len());
                rejected
            }
            None => {
                self.stats.record_failed_lock();
                return Err(());
            }
        };
        let parked = total - rejected.len();
        if !rejected.is_empty() {
            self.stats.record_dropped_many(rejected.len() as u64);
        }
        drop(rejected);
        Ok(parked)
    }

    /// Push items while the cap admits them; the remainder comes back for
    /// the caller to drop after releasing the lock.
    fn push_until_cap(
        config: &PoolConfig,
        free: &mut Vec<PoolBox<T>>,
        items: &mut Vec<PoolBox<T>>,
    ) -> Vec<PoolBox<T>> {
        let mut rejected = Vec::new();
        for obj in items.drain(..) {
            if config.accepts_object(free.len()) {
                free.push(obj);
            } else {
                rejected.push(obj);
            }
        }
        rejected
    }

    /// Number of dead objects currently parked.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// True if no objects are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all parked objects, returning their memory to the system —
    /// the paper's "returning memory from the pools to the operating system
    /// on demand".
    pub fn trim(&self) -> usize {
        let mut free = self.free.lock();
        let n = free.len();
        free.clear();
        free.shrink_to_fit();
        n
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }
}

/// A single-threaded pool with no locking at all.
///
/// The pre-processor "automatically removes all unnecessary locks" when the
/// program is not threaded (§5.1) — this type is that code path, and the
/// reason Amplify beats every allocator even at one thread in Figures 4–6.
#[derive(Debug)]
pub struct LocalPool<T> {
    free: RefCell<Vec<Box<T>>>,
    config: PoolConfig,
    hits: std::cell::Cell<u64>,
    fresh: std::cell::Cell<u64>,
}

impl<T> Default for LocalPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LocalPool<T> {
    /// An empty, unbounded, lock-free (single-thread) pool.
    pub fn new() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// An empty pool with explicit limits.
    pub fn with_config(config: PoolConfig) -> Self {
        LocalPool {
            free: RefCell::new(Vec::new()),
            config,
            hits: std::cell::Cell::new(0),
            fresh: std::cell::Cell::new(0),
        }
    }

    /// Take an object from the pool, or build one with `fresh`.
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> Box<T> {
        match self.free.borrow_mut().pop() {
            Some(b) => {
                self.hits.set(self.hits.get() + 1);
                b
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Box::new(fresh())
            }
        }
    }

    /// Return an object to the free list (or drop it at the cap).
    pub fn release(&self, obj: Box<T>) {
        let mut free = self.free.borrow_mut();
        if self.config.accepts_object(free.len()) {
            free.push(obj);
        }
    }

    /// Number of parked objects.
    pub fn len(&self) -> usize {
        self.free.borrow().len()
    }

    /// True if no objects are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocations served by reuse.
    pub fn pool_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Allocations that built a fresh object.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_allocates_fresh() {
        let pool: ObjectPool<u64> = ObjectPool::new();
        assert!(pool.is_empty());
        let x = pool.acquire(|| 7);
        assert_eq!(*x, 7);
        assert_eq!(pool.stats().fresh_allocs(), 1);
        assert_eq!(pool.stats().pool_hits(), 0);
    }

    #[test]
    fn lifo_reuse() {
        let pool: ObjectPool<u64> = ObjectPool::new();
        let a = pool.acquire(|| 1);
        let b = pool.acquire(|| 2);
        pool.release(a);
        pool.release(b);
        // LIFO: most recently released comes back first (cache-warm reuse).
        let x = pool.acquire(|| 99);
        assert_eq!(*x, 2);
        let y = pool.acquire(|| 99);
        assert_eq!(*y, 1);
        assert_eq!(pool.stats().pool_hits(), 2);
    }

    #[test]
    fn reused_object_keeps_state_unless_reinit() {
        let pool: ObjectPool<Vec<u8>> = ObjectPool::new();
        let mut v = pool.acquire(Vec::new);
        v.extend_from_slice(&[1, 2, 3]);
        pool.release(v);
        let v2 = pool.acquire(Vec::new);
        assert_eq!(&*v2, &[1, 2, 3]);
        pool.release(v2);
        let v3 = pool.acquire_with(Vec::new, |v| v.clear());
        assert!(v3.is_empty());
    }

    #[test]
    fn population_cap_drops_excess() {
        let pool: ObjectPool<u64> =
            ObjectPool::with_config(PoolConfig { max_objects: Some(2), ..Default::default() });
        for i in 0..5 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().releases(), 2);
        assert_eq!(pool.stats().dropped(), 3);
    }

    #[test]
    fn trim_empties_pool() {
        let pool: ObjectPool<u64> = ObjectPool::new();
        for i in 0..4 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.trim(), 4);
        assert!(pool.is_empty());
    }

    #[test]
    fn try_acquire_counts_contention() {
        let pool: ObjectPool<u64> = ObjectPool::new();
        pool.release(Box::new(5));
        // Hold the lock on another thread and observe try_acquire failing.
        let guard = pool.free.lock();
        assert!(pool.try_acquire().is_err());
        assert_eq!(pool.stats().failed_locks(), 1);
        drop(guard);
        assert_eq!(pool.try_acquire().unwrap().map(|b| *b), Some(5));
    }

    #[test]
    fn concurrent_acquire_release() {
        use std::sync::Arc;
        let pool: Arc<ObjectPool<u64>> = Arc::new(ObjectPool::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let b = p.acquire(|| t * 1000 + i);
                    p.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.stats().total_allocs(), 2000);
        // Everything released: pool holds every distinct box created.
        assert_eq!(pool.len() as u64, pool.stats().fresh_allocs());
    }

    #[test]
    fn local_pool_reuses_without_locks() {
        let pool: LocalPool<String> = LocalPool::new();
        let s = pool.acquire(|| "hello".to_string());
        pool.release(s);
        let s2 = pool.acquire(String::new);
        assert_eq!(&*s2, "hello");
        assert_eq!(pool.pool_hits(), 1);
        assert_eq!(pool.fresh_allocs(), 1);
    }

    #[test]
    fn local_pool_respects_cap() {
        let pool: LocalPool<u8> =
            LocalPool::with_config(PoolConfig { max_objects: Some(1), ..Default::default() });
        pool.release(Box::new(1));
        pool.release(Box::new(2));
        assert_eq!(pool.len(), 1);
    }
}
