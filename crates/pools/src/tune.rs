//! Online adaptive control of the size-class front-end's magazine caps
//! (the `adaptive` feature): the cheap half of the two-tier "automatic"
//! tuning loop (DESIGN.md §11).
//!
//! An [`AdaptiveController`] samples the per-class churn counters
//! ([`crate::global::class_churn`]) once per *epoch* — an explicit
//! [`AdaptiveController::step`] call, so embedders choose the cadence and
//! tests stay deterministic — and steers each class's runtime magazine cap
//! from the observed refill/flush rates:
//!
//! * a class whose cold traffic (refills + surplus flushes) exceeds
//!   `1/miss_denominator` of its allocations is thrashing its cap: the cap
//!   doubles (clamped to [`crate::global::MAG_CAP_MAX`]);
//! * a class with *zero* cold traffic over a whole epoch no longer needs
//!   an inflated cap: the cap halves back toward its compile-time default
//!   (never below it), releasing hoarded blocks to the shared tiers on the
//!   next flush.
//!
//! # Why this keeps the fast paths free of locked RMWs
//!
//! The controller writes only the runtime cap LUT, with relaxed stores
//! ([`crate::global::set_class_mag_cap`]); allocating threads read it with
//! one relaxed load, and only at the *cold* decision points (refill entry,
//! flush threshold). The hot hit path — local list pop, owner-only plain
//! counter stores — is byte-for-byte the PR 4/7 fold protocol and never
//! observes the controller at all. The signal the controller reads is the
//! same owner-only counter scheme: per-thread plain stores folded on exit,
//! summed under the registry spinlock by the epoch snapshot. No allocating
//! thread ever takes a lock or a locked RMW on the controller's behalf.

use crate::global::{self, ClassChurn};
use crate::size_class::NUM_CLASSES;

/// Default minimum classed allocations per epoch before a class's churn
/// is considered statistically meaningful.
pub const DEFAULT_MIN_SIGNAL: u64 = 1024;

/// Default miss-rate trigger: grow when `churn * 8 > allocs`, i.e. the
/// epoch hit rate dropped below 87.5%.
pub const DEFAULT_MISS_DENOMINATOR: u64 = 8;

/// One cap change made by [`AdaptiveController::step`], with the epoch
/// deltas that justified it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapAdjustment {
    pub class: usize,
    pub old_cap: u32,
    pub new_cap: u32,
    /// Classed allocations observed this epoch.
    pub allocs: u64,
    /// Cold refills observed this epoch.
    pub refills: u64,
    /// Surplus flushes observed this epoch.
    pub flushes: u64,
}

/// Epoch-driven magazine-cap controller for the global front-end.
#[derive(Debug)]
pub struct AdaptiveController {
    prev: [ClassChurn; NUM_CLASSES],
    epochs: u64,
    adjustments: u64,
    min_signal: u64,
    miss_denominator: u64,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveController {
    /// A controller with the default thresholds, baselined at the current
    /// counter state (the first epoch measures traffic from now on, not
    /// since process start).
    pub fn new() -> Self {
        Self::with_thresholds(DEFAULT_MIN_SIGNAL, DEFAULT_MISS_DENOMINATOR)
    }

    /// A controller with explicit thresholds (`miss_denominator` is
    /// clamped to at least 1).
    pub fn with_thresholds(min_signal: u64, miss_denominator: u64) -> Self {
        AdaptiveController {
            prev: global::class_churn(),
            epochs: 0,
            adjustments: 0,
            min_signal,
            miss_denominator: miss_denominator.max(1),
        }
    }

    /// Epochs stepped so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total cap changes applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Run one epoch: snapshot the churn counters, steer every class's
    /// cap from the deltas, and return the adjustments made (empty when
    /// every class is behaving).
    pub fn step(&mut self) -> Vec<CapAdjustment> {
        let now = global::class_churn();
        let mut out = Vec::new();
        for (class, (cur, prev)) in now.iter().zip(self.prev.iter()).enumerate() {
            let allocs = cur.allocs.wrapping_sub(prev.allocs);
            let refills = cur.refills.wrapping_sub(prev.refills);
            let flushes = cur.flushes.wrapping_sub(prev.flushes);
            let old_cap = global::class_mag_cap(class);
            let new_cap = decide(
                old_cap,
                global::default_class_mag_cap(class),
                allocs,
                refills + flushes,
                self.min_signal,
                self.miss_denominator,
            );
            if new_cap != old_cap {
                global::set_class_mag_cap(class, new_cap);
                self.adjustments += 1;
                out.push(CapAdjustment { class, old_cap, new_cap, allocs, refills, flushes });
            }
        }
        self.prev = now;
        self.epochs += 1;
        out
    }
}

/// The pure cap policy: grow ×2 on churn above the miss threshold, decay
/// ÷2 toward (never below) the default on a churn-free epoch, hold
/// otherwise. Separated from the counter plumbing so the hysteresis is
/// unit-testable without touching process-global state.
pub fn decide(
    old_cap: u32,
    default_cap: u32,
    allocs: u64,
    churn: u64,
    min_signal: u64,
    miss_denominator: u64,
) -> u32 {
    if allocs >= min_signal.max(1) && churn.saturating_mul(miss_denominator.max(1)) > allocs {
        old_cap.saturating_mul(2).min(global::MAG_CAP_MAX)
    } else if churn == 0 && old_cap > default_cap {
        (old_cap / 2).max(default_cap)
    } else {
        old_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_churny_epoch() {
        // 1/4 of allocs took the cold path: well past the 1/8 trigger.
        assert_eq!(decide(64, 64, 4096, 1024, 1024, 8), 128);
    }

    #[test]
    fn growth_clamps_at_max() {
        assert_eq!(decide(global::MAG_CAP_MAX, 8, 1 << 20, 1 << 19, 1024, 8), global::MAG_CAP_MAX);
    }

    #[test]
    fn decays_toward_default_when_quiet() {
        assert_eq!(decide(256, 64, 4096, 0, 1024, 8), 128);
        assert_eq!(decide(128, 64, 4096, 0, 1024, 8), 64);
        // Never below the compile-time default.
        assert_eq!(decide(64, 64, 4096, 0, 1024, 8), 64);
        assert_eq!(decide(100, 64, 0, 0, 1024, 8), 64);
    }

    #[test]
    fn holds_below_the_signal_floor() {
        // Too few allocs to trust the ratio: no change either way.
        assert_eq!(decide(64, 64, 100, 90, 1024, 8), 64);
    }

    #[test]
    fn holds_on_moderate_churn() {
        // 1/16 of allocs cold: under the 1/8 trigger, nonzero so no decay.
        assert_eq!(decide(128, 64, 4096, 256, 1024, 8), 128);
    }

    #[test]
    fn quiet_process_steps_make_no_adjustments() {
        let mut ctl = AdaptiveController::new();
        // No classed traffic between construction and step: every class
        // holds (caps may sit above default only if someone tuned them,
        // and a zero-alloc epoch decays at most once per step).
        global::reset_tuning();
        let adj = ctl.step();
        assert!(adj.is_empty(), "no traffic must mean no adjustments: {adj:?}");
        assert_eq!(ctl.epochs(), 1);
        assert_eq!(ctl.adjustments(), 0);
    }

    #[test]
    fn runtime_caps_are_settable_and_resettable() {
        let class = 0;
        let default = global::default_class_mag_cap(class);
        assert_eq!(global::class_mag_cap(class), default);
        assert_eq!(global::set_class_mag_cap(class, default * 2), default * 2);
        assert_eq!(global::class_mag_cap(class), default * 2);
        // Clamped at both ends.
        assert_eq!(global::set_class_mag_cap(class, 0), global::MAG_CAP_MIN);
        assert_eq!(global::set_class_mag_cap(class, u32::MAX), global::MAG_CAP_MAX);
        global::reset_tuning();
        assert_eq!(global::class_mag_cap(class), default);
        assert_eq!(global::set_remote_batch(0), 1);
        global::reset_tuning();
        assert_eq!(global::remote_batch(), 32);
    }
}
