//! Lock-free counters shared by all pool kinds.
//!
//! With the `telemetry` feature enabled, every counter bump also records a
//! typed event ([`telemetry::EventKind`]) into the calling thread's event
//! ring — the counters and the event totals are bumped at the same sites,
//! so they agree by construction.

use crate::obs::pool_event;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing a pool's behaviour. All methods use relaxed atomics —
/// these are statistics, not synchronization.
///
/// The distinction that matters for the paper's evaluation:
///
/// * `pool_hits` — allocations served from the free list (a reused object or
///   structure; no heap traffic);
/// * `fresh_allocs` — allocations that had to fall through to the heap
///   (pool empty, or the parked memory was unusable);
/// * `failed_locks` — try-lock failures; the paper monitors exactly this to
///   argue Amplify's critical sections are short (§5.1).
#[derive(Debug, Default)]
pub struct PoolStats {
    pool_hits: AtomicU64,
    fresh_allocs: AtomicU64,
    releases: AtomicU64,
    dropped: AtomicU64,
    failed_locks: AtomicU64,
    lock_acquisitions: AtomicU64,
    depot_swaps: AtomicU64,
    depot_parks: AtomicU64,
    slab_carves: AtomicU64,
    fallback_allocs: AtomicU64,
}

impl PoolStats {
    /// New zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
        pool_event!(AcquireHit);
    }

    /// Fold a retiring magazine's locally-counted hits and releases into the
    /// shared counters (see `magazine::MagCells`). No events: the owning
    /// thread already emitted one per operation.
    pub(crate) fn fold_magazine_counts(&self, hits: u64, releases: u64) {
        self.pool_hits.fetch_add(hits, Ordering::Relaxed);
        self.releases.fetch_add(releases, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_fresh(&self) {
        self.fresh_allocs.fetch_add(1, Ordering::Relaxed);
        pool_event!(AcquireMiss);
    }

    #[inline]
    pub(crate) fn record_release(&self) {
        self.releases.fetch_add(1, Ordering::Relaxed);
        pool_event!(Release);
    }

    #[inline]
    pub(crate) fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        pool_event!(Drop, 1);
    }

    #[inline]
    pub(crate) fn record_dropped_many(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
        pool_event!(Drop, n);
    }

    #[inline]
    pub(crate) fn record_failed_lock(&self) {
        self.failed_locks.fetch_add(1, Ordering::Relaxed);
        pool_event!(ShardLockContention);
    }

    #[inline]
    pub(crate) fn record_lock(&self) {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_depot_swap(&self) {
        self.depot_swaps.fetch_add(1, Ordering::Relaxed);
        // The matching DepotSwap event carries the magazine size as its
        // payload, so it is recorded at the swap site, not here.
    }

    #[inline]
    pub(crate) fn record_depot_park(&self) {
        self.depot_parks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_slab_carve(&self) {
        self.slab_carves.fetch_add(1, Ordering::Relaxed);
    }

    /// An acquire degraded gracefully to a plain heap `Box` (injected
    /// allocation failure — see [`crate::fault`]). Counted *in addition to*
    /// [`PoolStats::record_fresh`], so `pool_hits + fresh_allocs` still
    /// equals total allocation requests under any fault schedule.
    #[inline]
    pub(crate) fn record_fallback(&self) {
        self.fallback_allocs.fetch_add(1, Ordering::Relaxed);
        pool_event!(FallbackAlloc, 1);
    }

    /// Allocations served by reuse from the free list.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Allocations that fell through to the underlying allocator.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs.load(Ordering::Relaxed)
    }

    /// Objects returned to the pool.
    pub fn releases(&self) -> u64 {
        self.releases.load(Ordering::Relaxed)
    }

    /// Objects the pool refused to keep (capacity/size caps) and dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// try-lock attempts that found the lock held.
    pub fn failed_locks(&self) -> u64 {
        self.failed_locks.load(Ordering::Relaxed)
    }

    /// Successful lock acquisitions.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Full magazines swapped in from the depot (O(1) cold refills).
    pub fn depot_swaps(&self) -> u64 {
        self.depot_swaps.load(Ordering::Relaxed)
    }

    /// Full magazines parked on the depot (O(1) overflow flushes).
    pub fn depot_parks(&self) -> u64 {
        self.depot_parks.load(Ordering::Relaxed)
    }

    /// Contiguous slabs carved for fresh allocation.
    pub fn slab_carves(&self) -> u64 {
        self.slab_carves.load(Ordering::Relaxed)
    }

    /// Acquires that degraded to a plain heap `Box` under injected
    /// allocation failure (a subset of [`PoolStats::fresh_allocs`]; always
    /// 0 without the `fault-inject` feature).
    pub fn fallback_allocs(&self) -> u64 {
        self.fallback_allocs.load(Ordering::Relaxed)
    }

    /// Total allocation requests (hits + fresh).
    pub fn total_allocs(&self) -> u64 {
        self.pool_hits() + self.fresh_allocs()
    }

    /// Fraction of allocations served by reuse, in `[0, 1]`. Returns 0 when
    /// nothing was allocated.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_allocs();
        if total == 0 {
            0.0
        } else {
            self.pool_hits() as f64 / total as f64
        }
    }

    /// Snapshot all counters into a plain struct (for reports).
    pub fn snapshot(&self) -> StatsSnapshot {
        // The loads are not one atomic cut. Read `releases` before the
        // allocation counters: a release always follows its acquire, so
        // this order keeps `releases ≤ total_allocs + in-flight` true for
        // any concurrent observer (asserted by the snapshot-consistency
        // integration test).
        let releases = self.releases();
        StatsSnapshot {
            pool_hits: self.pool_hits(),
            fresh_allocs: self.fresh_allocs(),
            releases,
            dropped: self.dropped(),
            failed_locks: self.failed_locks(),
            lock_acquisitions: self.lock_acquisitions(),
            depot_swaps: self.depot_swaps(),
            depot_parks: self.depot_parks(),
            slab_carves: self.slab_carves(),
            fallback_allocs: self.fallback_allocs(),
        }
    }
}

/// A point-in-time copy of [`PoolStats`].
///
/// Fields are private on purpose: every pool kind (local, sharded,
/// magazine-fronted) exposes the **same method-based surface** as
/// [`PoolStats`] itself, so call sites never depend on which pool layout
/// produced the numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pool_hits: u64,
    fresh_allocs: u64,
    releases: u64,
    dropped: u64,
    failed_locks: u64,
    lock_acquisitions: u64,
    depot_swaps: u64,
    depot_parks: u64,
    slab_carves: u64,
    fallback_allocs: u64,
}

impl StatsSnapshot {
    /// Add hits/releases still held in live magazines' local counters
    /// (published via `magazine::MagCells`, not yet folded into the shared
    /// [`PoolStats`]).
    pub(crate) fn add_magazine_counts(&mut self, hits: u64, releases: u64) {
        self.pool_hits += hits;
        self.releases += releases;
    }

    /// Allocations served by reuse (method form, mirroring [`PoolStats`]).
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits
    }

    /// Allocations that fell through to the underlying allocator.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Objects returned to the pool.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Objects the pool refused to keep and dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// try-lock attempts that found the lock held.
    pub fn failed_locks(&self) -> u64 {
        self.failed_locks
    }

    /// Successful lock acquisitions.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions
    }

    /// Full magazines swapped in from the depot.
    pub fn depot_swaps(&self) -> u64 {
        self.depot_swaps
    }

    /// Full magazines parked on the depot.
    pub fn depot_parks(&self) -> u64 {
        self.depot_parks
    }

    /// Contiguous slabs carved for fresh allocation.
    pub fn slab_carves(&self) -> u64 {
        self.slab_carves
    }

    /// Acquires that degraded to a plain heap `Box` under injected
    /// allocation failure (a subset of `fresh_allocs`).
    pub fn fallback_allocs(&self) -> u64 {
        self.fallback_allocs
    }

    /// Total allocation requests (hits + fresh).
    pub fn total_allocs(&self) -> u64 {
        self.pool_hits + self.fresh_allocs
    }

    /// Fraction of allocations served by reuse, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_allocs();
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Merge another snapshot into this one (for aggregating shards).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.pool_hits += other.pool_hits;
        self.fresh_allocs += other.fresh_allocs;
        self.releases += other.releases;
        self.dropped += other.dropped;
        self.failed_locks += other.failed_locks;
        self.lock_acquisitions += other.lock_acquisitions;
        self.depot_swaps += other.depot_swaps;
        self.depot_parks += other.depot_parks;
        self.slab_carves += other.slab_carves;
        self.fallback_allocs += other.fallback_allocs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PoolStats::new();
        s.record_hit();
        s.record_hit();
        s.record_fresh();
        s.record_release();
        s.record_failed_lock();
        assert_eq!(s.pool_hits(), 2);
        assert_eq!(s.fresh_allocs(), 1);
        assert_eq!(s.total_allocs(), 3);
        assert_eq!(s.releases(), 1);
        assert_eq!(s.failed_locks(), 1);
    }

    #[test]
    fn hit_rate_bounds() {
        let s = PoolStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_fresh();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge() {
        let a = StatsSnapshot { pool_hits: 1, fresh_allocs: 2, ..Default::default() };
        let mut b = StatsSnapshot { pool_hits: 10, dropped: 3, ..Default::default() };
        b.merge(&a);
        assert_eq!(b.pool_hits, 11);
        assert_eq!(b.fresh_allocs, 2);
        assert_eq!(b.dropped, 3);
    }
}
