//! Heap-profiling observability for the size-class front-end: per-class
//! occupancy gauges, a sampled allocation-site profiler, and a time-series
//! snapshot ring — the measured input that Mesh-style reclamation and
//! profile-guided tuning (ROADMAP items 2 and 4) consume.
//!
//! Three pieces, all built on the front-end's owner-only counters so the
//! alloc/dealloc fast paths stay free of locked RMWs:
//!
//! * **Gauges** ([`gauges`]): per-size-class mapped bytes, live bytes,
//!   peak watermark, parked-magazine bytes (thread caches, central
//!   stacks, remote queues) and the fault-fallback residue. Collected by
//!   the two-pass fold in `pools::global` (DESIGN.md §9), which
//!   guarantees `live_bytes <= mapped_bytes` in every snapshot and
//!   exactness at quiescence.
//! * **Site sampler**: every thread keeps a per-class countdown; each
//!   [`sample_period`]-th classed allocation in a class is attributed to
//!   (class, thread, caller tag). Tags are small registered labels
//!   ([`register_tag`]) carried in a const-init TLS cell ([`set_tag`],
//!   [`TagGuard`]) — cheap and re-entrancy-safe where return-address
//!   capture would not be. Determinism: with the period set before a
//!   workload starts, a thread's sample set is a pure function of its own
//!   allocation sequence (countdowns are per-thread, never shared).
//! * **Snapshot ring** ([`capture_snapshot`]): a fixed static ring of
//!   gauge snapshots (no allocation while holding its lock), rendered as
//!   the occupancy-over-time timeline in the `heap-profile-v1` telemetry
//!   section.
//!
//! Everything here is collection-side and may be called from normal code
//! (bench drivers, sampler threads). Nothing in this module is called on
//! allocator hot paths except [`sample_period`] and [`current_tag`], both
//! reached only through the countdown's cold tick.

use crate::global::{self, Spin};
use crate::size_class::{class_bytes, NUM_CLASSES};
use std::cell::Cell;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Caller-tag slots, including slot 0 ("untagged"). A tag is a coarse
/// attribution label — one per subsystem or workload phase — not a call
/// stack; 16 slots cover a process's interesting call sites cheaply.
pub const HEAP_PROFILE_TAGS: usize = 16;

/// Thread-attribution slots: sample totals are keyed by cache ordinal
/// modulo this (collisions merge counts, never lose them).
pub const HEAP_PROFILE_THREAD_SLOTS: usize = 64;

/// Snapshot-ring capacity: old entries are overwritten once the ring is
/// full, so the timeline always covers the most recent captures.
pub const SNAPSHOT_RING: usize = 64;

// ---------------------------------------------------------------- sampling

/// 1-in-N sample period; 0 = profiler disabled (the compiled-in-but-idle
/// state the envelope gates measure).
static SAMPLE_PERIOD: AtomicU32 = AtomicU32::new(0);

/// Set the allocation-site sample period: every `period`-th classed
/// allocation per (thread, class) is sampled; 0 disables. Threads notice
/// a change within one countdown window (at most 512 allocs per class
/// while disabled, one period while enabled) — for deterministic sample
/// sets, set the period *before* the measured workload starts.
pub fn set_sample_period(period: u32) {
    SAMPLE_PERIOD.store(period, Ordering::Relaxed);
}

/// The current sample period (0 = disabled).
pub fn sample_period() -> u32 {
    SAMPLE_PERIOD.load(Ordering::Relaxed)
}

// Registered tag names, slot 0 reserved. Guarded by TAGS_LOCK; names are
// &'static str so the table itself never allocates.
static TAGS_LOCK: Spin = Spin::new();
static TAG_TABLE: TagTable = TagTable(UnsafeCell::new([None; HEAP_PROFILE_TAGS]));
static TAGS_USED: AtomicU32 = AtomicU32::new(1);

struct TagTable(UnsafeCell<[Option<&'static str>; HEAP_PROFILE_TAGS]>);
// SAFETY: all access goes through TAGS_LOCK.
unsafe impl Sync for TagTable {}

thread_local! {
    // Const-init: readable from inside the allocator at any point in a
    // thread's life without allocating or registering a destructor.
    static CURRENT_TAG: Cell<u8> = const { Cell::new(0) };
}

/// Register a caller tag, returning its id for [`set_tag`]/[`TagGuard`].
/// Registering the same name twice returns the same id; a full table
/// falls back to tag 0 ("untagged") rather than failing.
pub fn register_tag(name: &'static str) -> u8 {
    let _g = TAGS_LOCK.lock();
    // SAFETY: TAGS_LOCK is held.
    let table = unsafe { &mut *TAG_TABLE.0.get() };
    let used = TAGS_USED.load(Ordering::Relaxed) as usize;
    for (i, slot) in table.iter().enumerate().take(used).skip(1) {
        if *slot == Some(name) {
            return i as u8;
        }
    }
    if used < HEAP_PROFILE_TAGS {
        table[used] = Some(name);
        TAGS_USED.store(used as u32 + 1, Ordering::Relaxed);
        used as u8
    } else {
        0
    }
}

/// The name registered for `tag` ("untagged" for slot 0 or unknown ids).
pub fn tag_name(tag: u8) -> &'static str {
    if tag == 0 || tag as usize >= HEAP_PROFILE_TAGS {
        return "untagged";
    }
    let _g = TAGS_LOCK.lock();
    // SAFETY: TAGS_LOCK is held.
    let table = unsafe { &*TAG_TABLE.0.get() };
    table[tag as usize].unwrap_or("untagged")
}

/// Set the calling thread's caller tag; subsequent sampled allocations
/// are attributed to it. Returns the previous tag.
pub fn set_tag(tag: u8) -> u8 {
    CURRENT_TAG.with(|t| t.replace(tag))
}

/// The calling thread's current caller tag.
pub fn current_tag() -> u8 {
    CURRENT_TAG.get()
}

/// Scoped caller tag: restores the previous tag on drop.
pub struct TagGuard(u8);

impl TagGuard {
    pub fn new(tag: u8) -> Self {
        TagGuard(set_tag(tag))
    }
}

impl Drop for TagGuard {
    fn drop(&mut self) {
        set_tag(self.0);
    }
}

/// Run `f` with the calling thread's caller tag set to `tag`.
pub fn with_tag<R>(tag: u8, f: impl FnOnce() -> R) -> R {
    let _g = TagGuard::new(tag);
    f()
}

// Folded sample aggregates: exited threads' tables land here (from the
// front-end's teardown fold); live tables are summed in place at
// collection time.
static FOLDED_SITES: [[AtomicU64; HEAP_PROFILE_TAGS]; NUM_CLASSES] =
    [const { [const { AtomicU64::new(0) }; HEAP_PROFILE_TAGS] }; NUM_CLASSES];
static FOLDED_THREADS: [AtomicU64; HEAP_PROFILE_THREAD_SLOTS] =
    [const { AtomicU64::new(0) }; HEAP_PROFILE_THREAD_SLOTS];

/// Fold an exiting thread's sample table (called by the front-end's
/// teardown, under the registry hold).
pub(crate) fn fold_thread_samples(
    samples: &[[AtomicU32; HEAP_PROFILE_TAGS]; NUM_CLASSES],
    ordinal: u32,
    total: u64,
) {
    for (class, row) in samples.iter().enumerate() {
        for (tag, cell) in row.iter().enumerate() {
            let n = cell.load(Ordering::Relaxed) as u64;
            if n > 0 {
                FOLDED_SITES[class][tag].fetch_add(n, Ordering::Release);
            }
        }
    }
    if total > 0 {
        FOLDED_THREADS[ordinal as usize % HEAP_PROFILE_THREAD_SLOTS]
            .fetch_add(total, Ordering::Release);
    }
}

/// One aggregated allocation-site row: samples attributed to a
/// (size class, caller tag) cell, with the byte estimate implied by the
/// sample period at collection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSample {
    pub class: usize,
    pub block_bytes: usize,
    pub tag: u8,
    pub tag_name: &'static str,
    pub samples: u64,
    /// `samples * period * block_bytes`: the allocation volume this site
    /// represents (an *allocation-rate* estimate, not a live-set one).
    pub est_bytes: u64,
}

/// Aggregate sampled sites (folded + live threads), non-zero cells only,
/// sorted most-sampled first. `period` scaling uses the current period.
pub fn site_samples() -> Vec<SiteSample> {
    let mut sites = [[0u64; HEAP_PROFILE_TAGS]; NUM_CLASSES];
    let mut threads = [0u64; HEAP_PROFILE_THREAD_SLOTS];
    for (class, row) in FOLDED_SITES.iter().enumerate() {
        for (tag, cell) in row.iter().enumerate() {
            sites[class][tag] = cell.load(Ordering::Acquire);
        }
    }
    global::collect_live_samples(&mut sites, &mut threads);
    let period = sample_period().max(1) as u64;
    let mut out = Vec::new();
    for (class, row) in sites.iter().enumerate() {
        for (tag, &n) in row.iter().enumerate() {
            if n > 0 {
                out.push(SiteSample {
                    class,
                    block_bytes: class_bytes(class),
                    tag: tag as u8,
                    tag_name: tag_name(tag as u8),
                    samples: n,
                    est_bytes: n * period * class_bytes(class) as u64,
                });
            }
        }
    }
    out.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.class.cmp(&b.class)));
    out
}

/// Per-thread sample totals (slot = cache ordinal mod
/// [`HEAP_PROFILE_THREAD_SLOTS`]), non-zero slots only.
pub fn thread_samples() -> Vec<(usize, u64)> {
    let mut sites = [[0u64; HEAP_PROFILE_TAGS]; NUM_CLASSES];
    let mut threads = [0u64; HEAP_PROFILE_THREAD_SLOTS];
    for (slot, cell) in FOLDED_THREADS.iter().enumerate() {
        threads[slot] = cell.load(Ordering::Acquire);
    }
    global::collect_live_samples(&mut sites, &mut threads);
    threads.iter().enumerate().filter(|(_, &n)| n > 0).map(|(s, &n)| (s, n)).collect()
}

// ----------------------------------------------------------------- gauges

/// Point-in-time gauges for one size class, in bytes (block counts are
/// scaled by the class's block size; slab headers count toward mapped
/// bytes only through the slab's fixed 64 KiB footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassGauges {
    pub class: usize,
    pub block_bytes: usize,
    pub mapped_slabs: u64,
    pub mapped_bytes: u64,
    pub live_blocks: u64,
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`: `fetch_max`ed at every collection
    /// instant *and* fed by owner-folded per-thread net-live peaks
    /// observed at magazine-refill boundaries, so inter-snapshot bursts
    /// are captured too (lag bounded by one refill batch; clamped to
    /// mapped bytes, since non-simultaneous per-thread peaks must not
    /// imply more memory than was ever mapped).
    pub peak_live_bytes: u64,
    /// Blocks parked in thread-cache magazines.
    pub parked_cache_bytes: u64,
    /// Blocks parked on central free stacks.
    pub parked_central_bytes: u64,
    /// Blocks pending on remote-free queues.
    pub parked_remote_bytes: u64,
    /// Outstanding fault-fallback bytes (outside `mapped`/`live`).
    pub fallback_bytes: u64,
}

impl ClassGauges {
    /// Live fraction of mapped memory, in `[0, 1]` (0 when unmapped).
    /// `1 - occupancy` is the fragmentation the mapped/live ratio reads.
    pub fn occupancy(&self) -> f64 {
        if self.mapped_bytes == 0 {
            0.0
        } else {
            self.live_bytes as f64 / self.mapped_bytes as f64
        }
    }
}

/// A full gauge sweep: one entry per size class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapGauges {
    pub classes: [ClassGauges; NUM_CLASSES],
}

impl HeapGauges {
    pub fn total_mapped_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.mapped_bytes).sum()
    }

    pub fn total_live_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.live_bytes).sum()
    }

    pub fn total_parked_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.parked_cache_bytes + c.parked_central_bytes + c.parked_remote_bytes)
            .sum()
    }

    pub fn total_fallback_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.fallback_bytes).sum()
    }
}

/// Collect the per-class gauges now (and fold the peak watermark). Safe
/// from any non-allocator context; never called on allocator paths.
pub fn gauges() -> HeapGauges {
    let raw = global::collect_raw_gauges();
    let mut classes = [ClassGauges::default(); NUM_CLASSES];
    for (class, out) in classes.iter_mut().enumerate() {
        let bytes = class_bytes(class) as u64;
        let live_blocks = raw.allocs[class].saturating_sub(raw.frees[class]);
        *out = ClassGauges {
            class,
            block_bytes: bytes as usize,
            mapped_slabs: raw.mapped_slabs[class],
            mapped_bytes: raw.mapped_slabs[class] * crate::global::SLAB_BYTES as u64,
            live_blocks,
            live_bytes: live_blocks * bytes,
            peak_live_bytes: raw.peak_live_bytes[class],
            parked_cache_bytes: raw.cache_parked[class] * bytes,
            parked_central_bytes: raw.central_parked[class] * bytes,
            parked_remote_bytes: raw.remote_pending[class] * bytes,
            fallback_bytes: raw.fallback_blocks[class] * bytes,
        };
    }
    HeapGauges { classes }
}

// ------------------------------------------------------------------- ring

/// One timeline point: per-class live/mapped plus scalar totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotone capture sequence number (process-wide).
    pub seq: u64,
    pub mapped_bytes: u64,
    pub live_bytes: u64,
    pub parked_bytes: u64,
    pub fallback_bytes: u64,
    pub class_live_bytes: [u64; NUM_CLASSES],
    pub class_mapped_bytes: [u64; NUM_CLASSES],
}

const ZERO_SNAPSHOT: Snapshot = Snapshot {
    seq: 0,
    mapped_bytes: 0,
    live_bytes: 0,
    parked_bytes: 0,
    fallback_bytes: 0,
    class_live_bytes: [0; NUM_CLASSES],
    class_mapped_bytes: [0; NUM_CLASSES],
};

struct Ring {
    lock: Spin,
    data: UnsafeCell<RingData>,
}

// SAFETY: `data` is only touched under `lock`.
unsafe impl Sync for Ring {}

struct RingData {
    len: usize,
    next: usize,
    seq: u64,
    entries: [Snapshot; SNAPSHOT_RING],
}

static RING: Ring = Ring {
    lock: Spin::new(),
    data: UnsafeCell::new(RingData {
        len: 0,
        next: 0,
        seq: 0,
        entries: [ZERO_SNAPSHOT; SNAPSHOT_RING],
    }),
};

/// Collect the gauges and append them to the snapshot ring. Returns the
/// capture's sequence number. The gauge sweep happens before the ring
/// lock is taken; nothing allocates under either lock.
pub fn capture_snapshot() -> u64 {
    let g = gauges();
    let mut snap = ZERO_SNAPSHOT;
    snap.mapped_bytes = g.total_mapped_bytes();
    snap.live_bytes = g.total_live_bytes();
    snap.parked_bytes = g.total_parked_bytes();
    snap.fallback_bytes = g.total_fallback_bytes();
    for (class, cg) in g.classes.iter().enumerate() {
        snap.class_live_bytes[class] = cg.live_bytes;
        snap.class_mapped_bytes[class] = cg.mapped_bytes;
    }
    let _g = RING.lock.lock();
    // SAFETY: RING.lock is held.
    let data = unsafe { &mut *RING.data.get() };
    data.seq += 1;
    snap.seq = data.seq;
    data.entries[data.next] = snap;
    data.next = (data.next + 1) % SNAPSHOT_RING;
    if data.len < SNAPSHOT_RING {
        data.len += 1;
    }
    snap.seq
}

/// The ring's snapshots, oldest first (at most [`SNAPSHOT_RING`]).
pub fn snapshots() -> Vec<Snapshot> {
    let _g = RING.lock.lock();
    // SAFETY: RING.lock is held.
    let data = unsafe { &*RING.data.get() };
    let mut out = Vec::with_capacity(data.len);
    let start = (data.next + SNAPSHOT_RING - data.len) % SNAPSHOT_RING;
    for i in 0..data.len {
        out.push(data.entries[(start + i) % SNAPSHOT_RING]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::Layout;

    #[test]
    fn tags_register_dedup_and_name() {
        let a = register_tag("heap-profile-test-tag-a");
        let b = register_tag("heap-profile-test-tag-a");
        assert_eq!(a, b, "same name registers once");
        if a != 0 {
            assert_eq!(tag_name(a), "heap-profile-test-tag-a");
        }
        assert_eq!(tag_name(0), "untagged");
        assert_eq!(tag_name(HEAP_PROFILE_TAGS as u8), "untagged");
    }

    #[test]
    fn tag_guard_restores() {
        let t = register_tag("heap-profile-test-tag-guard");
        let before = current_tag();
        with_tag(t, || assert_eq!(current_tag(), t));
        assert_eq!(current_tag(), before);
    }

    #[test]
    fn gauges_hold_the_occupancy_invariant() {
        // Drive some classed traffic, then check every class's bound.
        let l = Layout::from_size_align(64, 8).unwrap();
        let blocks: Vec<*mut u8> = (0..512).map(|_| crate::global::raw_alloc(l)).collect();
        let g = gauges();
        for c in &g.classes {
            assert!(
                c.live_bytes <= c.mapped_bytes,
                "class {} live {} > mapped {}",
                c.class,
                c.live_bytes,
                c.mapped_bytes
            );
            assert!(c.peak_live_bytes >= c.live_bytes, "peak below current live");
        }
        assert!(g.total_mapped_bytes() > 0, "512 allocs must map at least one slab");
        for p in blocks {
            unsafe { crate::global::raw_dealloc(p, l) };
        }
    }

    #[test]
    fn peak_live_captures_inter_snapshot_bursts() {
        // Regression (ISSUE 10 satellite): peaks used to be `fetch_max`ed
        // only at collection instants, so a burst that lived and died
        // entirely between two collections was invisible — and under-read
        // peaks corrupt the reclamation ratio the RSS bench asserts.
        // Burst on a fresh thread with no collection while it is live,
        // free everything, exit: the owner-folded per-thread high-water
        // mark must still surface through the teardown fold.
        let l = Layout::from_size_align(512, 8).unwrap();
        const BLOCKS: usize = 4096; // ~2 MiB live at the burst peak
        std::thread::spawn(move || {
            let held: Vec<*mut u8> = (0..BLOCKS).map(|_| crate::global::raw_alloc(l)).collect();
            assert!(held.iter().all(|p| !p.is_null()));
            for p in held {
                unsafe { crate::global::raw_dealloc(p, l) };
            }
        })
        .join()
        .unwrap();
        let g = gauges();
        let c = g.classes.iter().find(|c| c.block_bytes == 512).expect("512-byte class");
        // The high-water mark lags by at most a couple of refill batches
        // (observed at cold refill points, not per alloc).
        let floor = ((BLOCKS - 128) * 512) as u64;
        assert!(
            c.peak_live_bytes >= floor,
            "peak {} must cover the {BLOCKS}-block inter-snapshot burst (floor {floor})",
            c.peak_live_bytes
        );
    }

    #[test]
    fn ring_keeps_the_latest_in_order() {
        let first = capture_snapshot();
        let second = capture_snapshot();
        assert_eq!(second, first + 1);
        let snaps = snapshots();
        assert!(snaps.len() >= 2);
        for w in snaps.windows(2) {
            assert!(w[1].seq > w[0].seq, "ring must stay ordered");
        }
        assert_eq!(snaps.last().unwrap().seq, second);
    }

    #[test]
    fn sampling_attributes_to_class_and_tag() {
        // A fresh thread gets a fresh countdown; enable before it runs so
        // its sample set is deterministic (tick on alloc 1, 1+p, ...).
        let tag = register_tag("heap-profile-test-sampler");
        let before: u64 = site_samples()
            .iter()
            .filter(|s| s.tag == tag && s.block_bytes == 256)
            .map(|s| s.samples)
            .sum();
        set_sample_period(16);
        std::thread::spawn(move || {
            let _g = TagGuard::new(tag);
            let l = Layout::from_size_align(256, 8).unwrap();
            for _ in 0..160 {
                let p = crate::global::raw_alloc(l);
                assert!(!p.is_null());
                unsafe { crate::global::raw_dealloc(p, l) };
            }
        })
        .join()
        .unwrap();
        set_sample_period(0);
        let after: u64 = site_samples()
            .iter()
            .filter(|s| s.tag == tag && s.block_bytes == 256)
            .map(|s| s.samples)
            .sum();
        // 160 allocs at period 16 → ticks at alloc 1, 17, ..., 145: 10
        // samples — but the installed harness can add more in this class.
        let got = after - before;
        assert!(got >= 10, "expected at least 10 samples, got {got}");
        if !crate::global::installed() {
            assert_eq!(got, 10, "sample set must be deterministic feature-off");
        }
        let threads = thread_samples();
        assert!(!threads.is_empty(), "thread attribution must record the sampler");
    }
}
