//! Internal instrumentation shim: the crate's only coupling point to the
//! `telemetry` feature.
//!
//! Hot paths call these macros unconditionally; with the feature disabled
//! they expand to nothing, so the default build compiles to exactly the
//! uninstrumented code (verified by the overhead entry in BENCH_pools.json).
//! With the feature enabled, `pool_event!` records into the calling
//! thread's event ring and `pool_hist!` into a process-wide histogram whose
//! handle is resolved once per call site.

#[cfg(feature = "telemetry")]
macro_rules! pool_event {
    // Payload-less form: the per-operation kinds (hits, releases, misses).
    // Fully inlined — a TLS load, a counter bump, and a sampling branch.
    ($kind:ident) => {
        telemetry::event::record(telemetry::EventKind::$kind, 0)
    };
    // Payload form: the rare-path kinds (refills, flushes, invalidations,
    // drops). Routed out of line so the instrumentation does not inflate
    // register pressure in the hot functions these branches live in.
    ($kind:ident, $payload:expr) => {
        telemetry::event::record_cold(telemetry::EventKind::$kind, $payload as u64)
    };
}

#[cfg(not(feature = "telemetry"))]
macro_rules! pool_event {
    ($kind:ident) => {};
    // Capture the payload in a never-called closure: it typechecks but is
    // not evaluated, and the optimizer erases it entirely.
    ($kind:ident, $payload:expr) => {{
        let _ = || $payload;
    }};
}

#[cfg(feature = "telemetry")]
macro_rules! pool_hist {
    ($name:literal, $value:expr) => {{
        static SITE: std::sync::OnceLock<std::sync::Arc<telemetry::Histogram>> =
            std::sync::OnceLock::new();
        SITE.get_or_init(|| telemetry::hist::histogram($name)).record($value as u64);
    }};
}

#[cfg(not(feature = "telemetry"))]
macro_rules! pool_hist {
    ($name:literal, $value:expr) => {{
        let _ = || $value;
    }};
}

pub(crate) use {pool_event, pool_hist};
