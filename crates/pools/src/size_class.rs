//! Segregated size classes for the untyped malloc front-end
//! ([`crate::global`]).
//!
//! The typed pools key their magazines by `T`; a `GlobalAlloc` only sees a
//! [`std::alloc::Layout`], so the front-end re-keys the same machinery by
//! *size class*: 28 classes from 16 B to 4 KiB, spaced so worst-case
//! internal fragmentation stays under ~25% (16-byte steps up to 128 B,
//! then geometric-ish steps — the spacing Kenwright's fixed-size pools and
//! tcmalloc-family allocators converge on). Anything larger than
//! [`MAX_CLASS_BYTES`], or needing alignment above [`CLASS_ALIGN`], passes
//! through to the system allocator untouched.
//!
//! Lookup is a 256-entry `u8` table indexed by `(size - 1) / 16`, built at
//! compile time — no loops or branches beyond the passthrough guard on the
//! allocation fast path.

/// Number of segregated size classes.
pub const NUM_CLASSES: usize = 28;

/// Largest request served from a class; bigger allocations pass through.
pub const MAX_CLASS_BYTES: usize = 4096;

/// Alignment every class block provides. Requests demanding more pass
/// through (class blocks are carved at 16-byte strides, so 16 is the
/// strongest guarantee the carve can make for free).
pub const CLASS_ALIGN: usize = 16;

/// Block size of each class, ascending.
pub const CLASS_BYTES: [usize; NUM_CLASSES] = [
    16, 32, 48, 64, 80, 96, 112, 128, // 16-byte steps: the small-object hot zone
    160, 192, 224, 256, // 32-byte steps
    320, 384, 448, 512, // 64-byte steps
    640, 768, 896, 1024, // 128-byte steps
    1280, 1536, 1792, 2048, // 256-byte steps
    2560, 3072, 3584, 4096, // 512-byte steps
];

/// `LUT[(size - 1) / 16]` = smallest class whose block fits `size`.
const LUT: [u8; MAX_CLASS_BYTES / CLASS_ALIGN] = {
    let mut lut = [0u8; MAX_CLASS_BYTES / CLASS_ALIGN];
    let mut i = 0;
    while i < lut.len() {
        let size = (i + 1) * CLASS_ALIGN;
        let mut c = 0;
        while CLASS_BYTES[c] < size {
            c += 1;
        }
        lut[i] = c as u8;
        i += 1;
    }
    lut
};

/// Map a request to its size class, or `None` for a system passthrough
/// (too big, zero-sized, or over-aligned).
#[inline]
pub fn class_for(size: usize, align: usize) -> Option<usize> {
    if size == 0 || size > MAX_CLASS_BYTES || align > CLASS_ALIGN {
        return None;
    }
    // Class blocks sit on 16-byte strides, so any power-of-two alignment
    // up to CLASS_ALIGN is satisfied by every block.
    Some(LUT[(size - 1) / CLASS_ALIGN] as usize)
}

/// Block size of class `class`.
#[inline]
pub fn class_bytes(class: usize) -> usize {
    CLASS_BYTES[class]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_small_size_maps_to_a_fitting_class() {
        for size in 1..=MAX_CLASS_BYTES {
            let c = class_for(size, 8).expect("sizes <= MAX_CLASS_BYTES are classed");
            assert!(
                class_bytes(c) >= size,
                "size {size} mapped to class {c} ({} B) which is too small",
                class_bytes(c)
            );
            // Tight: the class below (if any) must NOT fit, i.e. we picked
            // the smallest sufficient class.
            if c > 0 {
                assert!(
                    class_bytes(c - 1) < size,
                    "size {size} should map to class {} ({} B), not {c}",
                    c - 1,
                    class_bytes(c - 1)
                );
            }
        }
    }

    #[test]
    fn classes_are_monotone_in_request_size() {
        let mut prev = 0usize;
        for size in 1..=MAX_CLASS_BYTES {
            let c = class_for(size, 1).unwrap();
            assert!(c >= prev, "class regressed at size {size}: {prev} -> {c}");
            prev = c;
        }
        assert_eq!(prev, NUM_CLASSES - 1, "the last size must hit the last class");
    }

    #[test]
    fn class_table_is_strictly_increasing_and_16_aligned() {
        for w in CLASS_BYTES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &b in &CLASS_BYTES {
            assert_eq!(b % CLASS_ALIGN, 0, "class size {b} not a multiple of CLASS_ALIGN");
        }
        assert_eq!(CLASS_BYTES[NUM_CLASSES - 1], MAX_CLASS_BYTES);
    }

    #[test]
    fn passthrough_boundary_is_exact() {
        // The largest classed request...
        assert_eq!(class_for(MAX_CLASS_BYTES, CLASS_ALIGN), Some(NUM_CLASSES - 1));
        // ...and one byte past it passes through.
        assert_eq!(class_for(MAX_CLASS_BYTES + 1, 8), None);
        // Zero-sized requests never reach a class (std's Global handles
        // them with dangling pointers before the allocator is called).
        assert_eq!(class_for(0, 1), None);
    }

    #[test]
    fn over_aligned_requests_pass_through() {
        // At or below CLASS_ALIGN: served from a class.
        for align in [1usize, 2, 4, 8, 16] {
            assert!(class_for(64, align).is_some(), "align {align} must be classed");
        }
        // Above CLASS_ALIGN: passthrough even for tiny sizes.
        for align in [32usize, 64, 128, 4096] {
            assert_eq!(class_for(64, align), None, "align {align} must pass through");
            assert_eq!(class_for(16, align), None);
        }
    }

    #[test]
    fn fragmentation_stays_bounded() {
        // Spacing sanity: above the 16-byte-step zone no request wastes
        // more than 25% of its block (inside it the fixed 16 B quantum
        // dominates, e.g. a 17 B request in a 32 B block).
        for size in 128..=MAX_CLASS_BYTES {
            let c = class_for(size, 8).unwrap();
            let waste = class_bytes(c) - size;
            assert!(
                (waste as f64) <= 0.25 * class_bytes(c) as f64 + f64::EPSILON,
                "size {size}: block {} wastes {waste}",
                class_bytes(c)
            );
        }
    }
}
