//! Watermark-driven RSS reclamation policy over the slab-retirement
//! mechanism in [`crate::global`] (ROADMAP item 2; DESIGN.md §13).
//!
//! The mechanism — [`crate::global::sweep_and_retire`] — is a single
//! pass: drain the shared levels, retire every fully-idle slab down to a
//! mapped-bytes target, release the pages with `madvise(MADV_DONTNEED)`,
//! quarantine the slabs for recarving. This module decides *when* and
//! *how far*:
//!
//! * [`reclaim`] runs passes until the target is met or progress stops —
//!   a pass bumps the cache-flush epoch, so blocks parked in other
//!   threads' caches surface one pass later, and a short pass loop is
//!   what converges on them;
//! * [`ReclaimerConfig`] + [`BackgroundReclaimer`] (feature
//!   `background-reclaim`) put that behind a thread driven by the
//!   [`crate::heap_profile`] occupancy gauges: when the live/mapped
//!   ratio drops under a low watermark, mapped is trimmed back toward
//!   `live * headroom`.
//!
//! Everything here runs in ordinary (non-allocator) context; nothing is
//! called from alloc/dealloc paths.

use crate::global;
use crate::heap_profile;

/// How many consecutive sweep passes [`reclaim`] chains before giving
/// up on a still-unmet target. Two is the epoch horizon: pass 1 flushes
/// the caller and signals every other thread, pass 2 (and 3) sweep what
/// they released at their next cold point.
const MAX_PASSES: usize = 3;

/// What a [`reclaim`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Total mapped slab bytes before the first and after the last pass.
    pub mapped_before_bytes: u64,
    pub mapped_after_bytes: u64,
    /// Sweep passes actually run (stops early once the target is met or
    /// a pass makes no progress).
    pub passes: u64,
    /// Blocks drained through the sweeps (survivors were pushed back).
    pub swept_blocks: u64,
    /// Slabs retired and the bytes their pages returned to the OS.
    pub reclaimed_slabs: u64,
    pub reclaimed_bytes: u64,
    /// Retired slabs whose pages the kernel confirmed dropping (equals
    /// `reclaimed_slabs` on Linux/x86-64; 0 where `madvise` is stubbed).
    pub advised_slabs: u64,
}

fn mapped_bytes_now() -> u64 {
    heap_profile::gauges().total_mapped_bytes()
}

/// Trim mapped slab memory down toward `watermark_bytes` (0 = retire
/// everything idle). Runs up to [`MAX_PASSES`] sweep passes, stopping
/// early once the watermark is met or a pass retires nothing.
pub fn reclaim(watermark_bytes: u64) -> ReclaimStats {
    let mut stats =
        ReclaimStats { mapped_before_bytes: mapped_bytes_now(), ..ReclaimStats::default() };
    for _ in 0..MAX_PASSES {
        if mapped_bytes_now() <= watermark_bytes {
            break;
        }
        let out = global::sweep_and_retire(watermark_bytes);
        stats.passes += 1;
        stats.swept_blocks += out.swept_blocks;
        stats.reclaimed_slabs += out.retired_slabs;
        stats.reclaimed_bytes += out.retired_bytes;
        stats.advised_slabs += out.advised_slabs;
        if out.retired_slabs == 0 {
            break;
        }
    }
    stats.mapped_after_bytes = mapped_bytes_now();
    stats
}

/// [`reclaim`] with a zero watermark: retire every slab that is fully
/// idle right now.
pub fn reclaim_all() -> ReclaimStats {
    reclaim(0)
}

/// Cumulative process-lifetime retirement totals, independent of any
/// particular [`reclaim`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimTotals {
    pub reclaimed_slabs: u64,
    pub reclaimed_bytes: u64,
    pub recarved_slabs: u64,
    pub advised_slabs: u64,
    /// Retired slabs currently parked in the quarantine pool.
    pub quarantined_slabs: u64,
}

/// Snapshot the cumulative totals.
pub fn totals() -> ReclaimTotals {
    let (reclaimed_slabs, reclaimed_bytes, recarved_slabs, advised_slabs) =
        global::reclaim_totals();
    ReclaimTotals {
        reclaimed_slabs,
        reclaimed_bytes,
        recarved_slabs,
        advised_slabs,
        quarantined_slabs: global::retired_pool_len() as u64,
    }
}

/// Background-reclaimer policy knobs.
#[cfg(feature = "background-reclaim")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReclaimerConfig {
    /// Gauge-check cadence.
    pub interval: std::time::Duration,
    /// Trigger: reclaim when `live / mapped` drops below this occupancy
    /// (fragmentation high, pages mostly idle).
    pub occupancy_low: f64,
    /// Never trim mapped below this floor — tiny heaps are not worth
    /// sweeping, and a floor keeps the reclaimer from fighting a warmup.
    pub min_mapped_bytes: u64,
    /// Watermark: trim mapped back toward `live_bytes * headroom`.
    pub headroom: f64,
}

#[cfg(feature = "background-reclaim")]
impl Default for ReclaimerConfig {
    fn default() -> Self {
        ReclaimerConfig {
            interval: std::time::Duration::from_millis(50),
            occupancy_low: 0.5,
            min_mapped_bytes: 4 * 1024 * 1024,
            headroom: 2.0,
        }
    }
}

/// The feature-gated background reclaimer: a thread that watches the
/// heap-profile occupancy gauges and calls [`reclaim`] when the mapped
/// set runs cold. Stop it explicitly with [`stop`](Self::stop) (drop
/// also stops it, blocking until the thread exits).
#[cfg(feature = "background-reclaim")]
pub struct BackgroundReclaimer {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

#[cfg(feature = "background-reclaim")]
impl BackgroundReclaimer {
    /// Start the reclaimer thread with `config`.
    pub fn start(config: ReclaimerConfig) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pool-reclaimer".into())
            .spawn(move || {
                let mut reclaimed = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(config.interval);
                    let g = heap_profile::gauges();
                    let mapped = g.total_mapped_bytes();
                    let live = g.total_live_bytes();
                    if mapped <= config.min_mapped_bytes {
                        continue;
                    }
                    let occupancy = live as f64 / mapped as f64;
                    if occupancy >= config.occupancy_low {
                        continue;
                    }
                    let watermark =
                        ((live as f64 * config.headroom) as u64).max(config.min_mapped_bytes);
                    reclaimed += reclaim(watermark).reclaimed_bytes;
                }
                reclaimed
            })
            .expect("spawn pool-reclaimer");
        BackgroundReclaimer { stop, handle: Some(handle) }
    }

    /// [`start`](Self::start) with [`ReclaimerConfig::default`].
    pub fn start_default() -> Self {
        Self::start(ReclaimerConfig::default())
    }

    /// Stop the thread and return the total bytes it reclaimed.
    pub fn stop(mut self) -> u64 {
        self.shutdown().unwrap_or(0)
    }

    fn shutdown(&mut self) -> Option<u64> {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        self.handle.take().map(|h| h.join().expect("pool-reclaimer panicked"))
    }
}

#[cfg(feature = "background-reclaim")]
impl Drop for BackgroundReclaimer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::Layout;

    #[test]
    fn reclaim_trims_an_idle_burst_and_reports_totals() {
        let l = Layout::from_size_align(1024, 8).unwrap();
        std::thread::spawn(move || {
            let held: Vec<usize> = (0..512).map(|_| global::raw_alloc(l) as usize).collect();
            assert!(held.iter().all(|&p| p != 0));
            for p in held {
                unsafe { global::raw_dealloc(p as *mut u8, l) };
            }
        })
        .join()
        .unwrap();
        let before = totals();
        let stats = reclaim_all();
        assert!(stats.passes >= 1);
        assert!(
            stats.reclaimed_slabs >= 1,
            "an idle 512-block burst must retire at least one slab: {stats:?}"
        );
        assert_eq!(stats.reclaimed_bytes, stats.reclaimed_slabs * 64 * 1024);
        assert!(stats.mapped_after_bytes <= stats.mapped_before_bytes);
        let after = totals();
        assert!(after.reclaimed_slabs >= before.reclaimed_slabs + stats.reclaimed_slabs);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(stats.advised_slabs, stats.reclaimed_slabs, "madvise must succeed on Linux");
    }

    #[test]
    fn reclaim_respects_the_watermark_floor() {
        // A watermark above everything currently mapped must retire
        // nothing, however idle the heap is.
        let stats = reclaim(u64::MAX);
        assert_eq!(stats.reclaimed_slabs, 0);
        assert_eq!(stats.passes, 0);
    }

    #[cfg(feature = "background-reclaim")]
    #[test]
    fn background_reclaimer_trims_while_running() {
        use std::time::Duration;
        let reclaimer = BackgroundReclaimer::start(ReclaimerConfig {
            interval: Duration::from_millis(2),
            occupancy_low: 1.1, // always eligible
            min_mapped_bytes: 0,
            headroom: 1.0,
        });
        // Keep laying down idle bursts (each ~64 idle slabs) across many
        // reclaimer ticks: even if a sibling test's one-shot reclaim
        // steals some, the background thread must catch others.
        let l = Layout::from_size_align(4096, 8).unwrap();
        for _ in 0..10 {
            std::thread::spawn(move || {
                let held: Vec<usize> = (0..256).map(|_| global::raw_alloc(l) as usize).collect();
                for p in held {
                    unsafe { global::raw_dealloc(p as *mut u8, l) };
                }
            })
            .join()
            .unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        let reclaimed = reclaimer.stop();
        assert!(reclaimed > 0, "the background thread must have reclaimed something");
    }
}
