//! Shadowed data-type arrays: the BGw extension (§5.2).
//!
//! BGw's allocations were dominated by `new char[n]` / `new int[n]` buffers
//! inside pooled parent objects. Amplify rewrites them to
//!
//! ```cpp
//! buffer = realloc(bufferShadow, length);   // allocate
//! bufferShadow = buffer;                    // free
//! ```
//!
//! with a custom `realloc` that (a) reuses the shadow block when the new
//! request is within `[capacity/2, capacity]` — guaranteeing at most 2× the
//! live memory in steady state — and (b) refuses to shadow blocks above a
//! configured maximum, so one huge allocation cannot pin a huge chunk.

use crate::limits::PoolConfig;

/// One shadowed buffer slot — the pair (`buffer`, `bufferShadow`) of a
/// pooled parent object.
#[derive(Debug, Default)]
pub struct ShadowBuf {
    parked: Option<Vec<u8>>,
    config: PoolConfig,
    hits: u64,
    misses: u64,
    dropped: u64,
    /// Largest combined (live request + parked capacity) observed; used to
    /// validate the 2× bound.
    peak_bytes: usize,
}

impl ShadowBuf {
    /// An empty slot with default (unbounded, half-size-rule) config.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slot with explicit limits.
    pub fn with_config(config: PoolConfig) -> Self {
        ShadowBuf { config, ..Default::default() }
    }

    /// The rewritten `buffer = new char[len]` →
    /// `buffer = amplify_realloc(bufferShadow, len)`.
    ///
    /// Returns a zero-length buffer with at least `len` capacity, reusing
    /// the parked block when the reuse rule allows.
    pub fn acquire(&mut self, len: usize) -> Vec<u8> {
        let mut buf = match self.parked.take() {
            Some(parked) if self.config.may_reuse(parked.capacity(), len) => {
                self.hits += 1;
                parked
            }
            Some(parked) => {
                // Reuse rule failed: free the shadow and allocate fresh —
                // the "not reusing unnecessarily large memory blocks" rule.
                drop(parked);
                self.misses += 1;
                Vec::with_capacity(len)
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        self.peak_bytes = self.peak_bytes.max(buf.capacity());
        buf
    }

    /// The rewritten `delete[] buffer` → `bufferShadow = buffer`.
    ///
    /// Blocks above `max_shadow_bytes` are freed instead of parked.
    pub fn release(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            // A zero-capacity block owns no allocation and can serve no
            // request better than a fresh `Vec`; parking it would only
            // occupy the shadow slot (and, under the half-size rule, a
            // 0-cap block can serve nothing but another 0-byte request).
            return;
        }
        if self.config.accepts_shadow(buf.capacity()) {
            self.peak_bytes = self.peak_bytes.max(buf.capacity());
            self.parked = Some(buf);
        } else {
            self.dropped += 1;
        }
    }

    /// True if a block is currently parked.
    pub fn has_parked(&self) -> bool {
        self.parked.is_some()
    }

    /// Capacity of the parked block, if any.
    pub fn parked_capacity(&self) -> usize {
        self.parked.as_ref().map(Vec::capacity).unwrap_or(0)
    }

    /// Drop the parked block (trimming).
    pub fn discard(&mut self) {
        self.parked = None;
    }

    /// Requests served by the parked block.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that allocated fresh memory.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Blocks refused parking by the size cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Largest buffer capacity this slot has held.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_acquire_allocates_fresh() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(100);
        assert_eq!(b.len(), 100);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits(), 0);
    }

    #[test]
    fn release_then_same_size_reuses() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(128);
        let addr = b.as_ptr();
        s.release(b);
        let b2 = s.acquire(128);
        assert_eq!(b2.as_ptr(), addr);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn half_size_rule_boundaries() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(100);
        assert!(b.capacity() >= 100);
        let cap = b.capacity();
        s.release(b);
        // Request exactly half: reused.
        let b2 = s.acquire(cap / 2);
        assert_eq!(s.hits(), 1);
        s.release(b2);
        // Request below half of the parked capacity: fresh allocation.
        let parked = s.parked_capacity();
        let _b3 = s.acquire(parked / 2 - 1);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn zero_length_request_against_parked_block() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(64);
        s.release(b);
        // A zero-byte request is below half of any parked capacity: the
        // shadow is freed and a fresh empty buffer returned. (No division
        // hazard in the rule — the divisor is the constant 2.)
        let b0 = s.acquire(0);
        assert_eq!(b0.len(), 0);
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 2);
        assert!(!s.has_parked());
    }

    #[test]
    fn zero_capacity_buffer_is_never_parked() {
        let mut s = ShadowBuf::new();
        let b0 = s.acquire(0);
        assert_eq!(b0.capacity(), 0);
        s.release(b0);
        assert!(!s.has_parked(), "a 0-cap buffer must not occupy the shadow slot");
        assert_eq!(s.dropped(), 0, "nothing was freed by the size cap");
        s.release(Vec::new());
        assert!(!s.has_parked());
    }

    #[test]
    fn capacity_one_block_reuse_window() {
        let mut s = ShadowBuf::new();
        let mut b = s.acquire(1);
        b.shrink_to_fit();
        assert_eq!(b.capacity(), 1);
        s.release(b);
        // Exactly 1 byte reuses the block (ceil(1/2) == 1) ...
        let b1 = s.acquire(1);
        assert_eq!(s.hits(), 1);
        s.release(b1);
        // ... but 0 bytes must not: the parked block is freed instead.
        let _b0 = s.acquire(0);
        assert_eq!(s.hits(), 1);
        assert!(!s.has_parked());
    }

    #[test]
    fn larger_request_than_parked_allocates_fresh() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(64);
        s.release(b);
        let b2 = s.acquire(1024);
        assert_eq!(b2.len(), 1024);
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn max_shadow_size_prevents_parking() {
        let mut s = ShadowBuf::with_config(PoolConfig {
            max_shadow_bytes: Some(256),
            ..Default::default()
        });
        let big = s.acquire(1024);
        s.release(big);
        assert!(!s.has_parked());
        assert_eq!(s.dropped(), 1);
        let small = s.acquire(128);
        s.release(small);
        assert!(s.has_parked());
    }

    #[test]
    fn reused_buffer_is_zeroed_to_len() {
        let mut s = ShadowBuf::new();
        let mut b = s.acquire(8);
        b.copy_from_slice(&[0xAA; 8]);
        s.release(b);
        let b2 = s.acquire(8);
        assert_eq!(&*b2, &[0u8; 8]);
    }

    #[test]
    fn steady_state_memory_at_most_twice_live() {
        // Repeatedly allocate a shrinking-then-growing series; with the
        // half-size rule the parked capacity never exceeds 2x the request
        // that reused it.
        let mut s = ShadowBuf::new();
        let sizes = [1000usize, 600, 500, 900, 451, 800, 412];
        let mut prev_cap = 0usize;
        for &sz in &sizes {
            let b = s.acquire(sz);
            let cap = b.capacity();
            if prev_cap > 0 && cap == prev_cap {
                // Reuse happened: rule guarantees sz >= cap/2, i.e.
                // cap <= 2*sz.
                assert!(cap <= 2 * sz);
            }
            prev_cap = cap;
            s.release(b);
        }
    }

    #[test]
    fn discard_frees_parked() {
        let mut s = ShadowBuf::new();
        let b = s.acquire(64);
        s.release(b);
        s.discard();
        assert!(!s.has_parked());
        let _ = s.acquire(64);
        assert_eq!(s.hits(), 0);
    }
}
