//! The size-class malloc front-end: the typed pools' magazine/depot/slab
//! machinery re-keyed by [`crate::size_class`] instead of `T`, exposed as
//! a [`GlobalAlloc`] so *every* allocation in the process can ride the
//! runtime (ROADMAP item 1).
//!
//! # Shape
//!
//! Requests classed by [`crate::size_class::class_for`] (≤ 4 KiB, align ≤ 16) are
//! served from per-thread caches of untyped blocks; everything else passes
//! straight through to [`System`]. Per class the hierarchy mirrors the
//! typed four-level acquire:
//!
//! 1. **Thread cache** — an intrusive LIFO list per class (the "magazine"
//!    for untyped blocks: no `Vec`, the link lives in the free block
//!    itself). Hit = two plain loads and a store.
//! 2. **Remote drain** — each class has [`CLASS_SHARDS`] shards, each with
//!    an MPSC Treiber stack of blocks freed by *other* threads. A refill
//!    `swap`s the whole remote chain out in one atomic op and adopts it
//!    *zero-touch*: batch counts and tails come from segment metadata
//!    (see [`seg_stamp`]), the kept prefix is served lazily off the
//!    thread cache, and no block in the backlog is walked.
//! 3. **Central free stacks** — version-tagged Treiber stacks (the
//!    [`crate::depot`] ABA scheme) holding flushed surplus; refills pop a
//!    batch, probing shards round-robin from the thread's home shard.
//! 4. **Slab carve** — a 64 KiB slab, 64 KiB-*aligned*, is carved into
//!    blocks. The alignment is the ownership trick: `ptr & !(SLAB_BYTES-1)`
//!    recovers the slab header on free, so `dealloc` learns the block's
//!    class shard without any lookup table.
//!
//! # Cross-thread free (the remote-free queue)
//!
//! `dealloc` reads the owning shard from the block's slab header (one
//! load — the header line is hot whenever any block of the same slab was
//! touched recently). Home-stamped blocks take a plain push onto the
//! local list. Foreign-stamped blocks go into a per-(class, owner)
//! **bucket** inside the thread cache: an intrusive chain built by
//! prepending, so the first block filed *is* the tail and no walk is ever
//! needed. When a bucket reaches [`REMOTE_BATCH`] blocks (or the cache
//! flushes), the whole chain lands on the owner's remote queue with a
//! single `push_chain` CAS — the cross-thread handshake is amortized over
//! the batch, and the freeing thread never touches the chain again. Each
//! shipped batch carries its tail + count packed into the head block's
//! second word ([`seg_stamp`]), so the owner's drain accounts for an
//! arbitrarily deep backlog by hopping batch heads — O(batches), never
//! O(blocks). A thread with *no* cache (never allocated, or past TLS
//! teardown) still remote-pushes each block individually (a batch of
//! one) — the queue is lock-free from any context.
//!
//! The stamp is a routing *hint*, not a correctness invariant. When a
//! refill steals blocks from another shard (levels 3/3½) it **re-stamps**
//! them to its home — slab adoption, in the spirit of mimalloc's
//! abandoned-page reclaim — so the thief's upcoming frees of those blocks
//! go local instead of bouncing through a remote queue forever. Surplus
//! flushes deliberately ignore stamps and return the detached half to the
//! home central stack; a block whose hint went stale (its slab re-stamped
//! while it sat elsewhere) simply takes one extra remote hop on its next
//! free and settles.
//!
//! # Re-entrancy rules (why this module looks spartan)
//!
//! Code reachable from `alloc`/`dealloc` must not allocate through the
//! global allocator — that recurses. Hence: intrusive lists instead of
//! collections, all internal storage (thread caches, slabs) obtained
//! directly from [`System`], plain-field per-thread counters folded into
//! global atomics on thread exit (the `MagCells` idiom), and **no**
//! telemetry ring writes on the hot paths — aggregate counts are published
//! as `remote_free` / `class_refill` events only when a caller explicitly
//! asks via [`publish_telemetry`]. Thread-local state is a const-init
//! `Cell` (no lazy-init allocation, no destructor of its own); a separate
//! drop guard flushes the cache at thread exit and leaves a DEAD sentinel
//! so late frees from TLS teardown degrade to remote pushes instead of
//! touching a freed cache.
//!
//! Slab *address space* is process-lifetime, but the pages behind it are
//! not: [`sweep_and_retire`] drains the shared levels, finds slabs whose
//! entire block population is idle, and returns their pages to the OS
//! with `madvise(MADV_DONTNEED)` — the mapping itself is never unmapped,
//! which preserves the type-stability the Treiber `next` reads rely on
//! (a stale reader can still dereference a retired block's link word; it
//! reads zeros and its tag CAS fails, exactly as for any lost race).
//! Retired slabs sit in a quarantine pool until the retiring pass has
//! fully completed, then [`carve_slab`] re-stamps them ahead of asking
//! [`System`] for fresh memory. Policy (watermarks, the background
//! reclaimer thread) lives in [`crate::reclaim`]; the mechanism here is
//! DESIGN.md §13.
//!
//! # Observability (the heap-profile layer)
//!
//! Per-class gauges (mapped, live, peak and parked bytes) are derived
//! from the owner-only counters above by [`collect_raw_gauges`]'s
//! two-pass fold — all alloc counters, then all free counters, then the
//! mapped-slab counts last — which keeps `live_bytes <= mapped_bytes`
//! true for every snapshot without adding a single locked RMW to the
//! alloc/dealloc paths. A sampled allocation-site profiler piggybacks one
//! countdown branch on `alloc_class`; everything user-facing (sample
//! period, caller tags, the snapshot ring) lives in
//! [`crate::heap_profile`].

use crate::heap_profile::{HEAP_PROFILE_TAGS, HEAP_PROFILE_THREAD_SLOTS};
use crate::size_class::{class_bytes, class_for, NUM_CLASSES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Slab size and alignment: ownership-by-address-mask needs them equal.
pub const SLAB_BYTES: usize = 64 * 1024;
const SLAB_MASK: usize = SLAB_BYTES - 1;

/// Remote/central shards per class. More shards than typical thread
/// counts keeps the test harness able to pin producers and consumers to
/// disjoint home shards (see [`pin_home_shard`]).
pub const CLASS_SHARDS: usize = 8;

/// Slab header bytes; block 0 starts here, preserving [`CLASS_ALIGN`].
const HEADER_BYTES: usize = 16;
const SLAB_MAGIC: u32 = 0x9F00_11AB;
/// Header magic for fault-injected carve fallbacks: System-allocated,
/// slab-aligned single-block carriers (see [`fallback_alloc`]). Distinct
/// from [`SLAB_MAGIC`] so `dealloc` routes them back to [`System`] instead
/// of into slab accounting.
const FALLBACK_MAGIC: u32 = 0xFA11_BACC;

// Tagged-pointer packing, identical to `depot::MagStack`: 48-bit address,
// 16-bit version tag bumped by every successful CAS.
const TAG_SHIFT: u32 = 48;
const PTR_MASK: u64 = (1 << TAG_SHIFT) - 1;
const TAG_ONE: u64 = 1 << TAG_SHIFT;

/// Thread-cache capacity per class: about half a slab's worth of small
/// blocks, clamped so big classes still batch and tiny ones don't hoard.
const MAG_CAP: [u32; NUM_CLASSES] = {
    let mut caps = [0u32; NUM_CLASSES];
    let mut c = 0;
    while c < NUM_CLASSES {
        let mut cap = 8192 / crate::size_class::CLASS_BYTES[c];
        if cap < 8 {
            cap = 8;
        }
        if cap > 256 {
            cap = 256;
        }
        caps[c] = cap as u32;
        c += 1;
    }
    caps
};

/// Runtime copy of [`MAG_CAP`], read at the cold refill/carve/flush
/// decision points with a single relaxed load — never a locked RMW, and
/// the hot local-list pop does not touch it at all. Defaults to the
/// hand-tuned constants; the adaptive controller (the feature-gated
/// `tune` module) and the offline tuner's feedback path adjust it via
/// [`set_class_mag_cap`].
static MAG_CAP_RT: [AtomicU32; NUM_CLASSES] = {
    let mut rt = [const { AtomicU32::new(0) }; NUM_CLASSES];
    let mut c = 0;
    while c < NUM_CLASSES {
        rt[c] = AtomicU32::new(MAG_CAP[c]);
        c += 1;
    }
    rt
};

/// Runtime foreign-bucket ship threshold (defaults to [`REMOTE_BATCH`]).
static REMOTE_BATCH_RT: AtomicU32 = AtomicU32::new(REMOTE_BATCH);

/// Smallest runtime magazine cap [`set_class_mag_cap`] accepts.
pub const MAG_CAP_MIN: u32 = 1;
/// Largest runtime magazine cap [`set_class_mag_cap`] accepts. Refill and
/// adoption batches are still clamped to [`BATCH_MAX`] blocks per trip,
/// so a large cap lengthens the local list without growing any stack
/// array.
pub const MAG_CAP_MAX: u32 = 1024;

#[inline]
fn mag_cap(class: usize) -> u32 {
    MAG_CAP_RT[class].load(Ordering::Relaxed)
}

/// Set one class's runtime magazine cap (clamped to
/// `MAG_CAP_MIN..=MAG_CAP_MAX`); returns the applied value. A relaxed
/// store: running threads observe it on their next cold refill or
/// flush-threshold check — no fence, no stall, no locked RMW anywhere.
pub fn set_class_mag_cap(class: usize, cap: u32) -> u32 {
    let cap = cap.clamp(MAG_CAP_MIN, MAG_CAP_MAX);
    MAG_CAP_RT[class].store(cap, Ordering::Relaxed);
    cap
}

/// The current runtime magazine cap for `class`.
pub fn class_mag_cap(class: usize) -> u32 {
    mag_cap(class)
}

/// The compile-time default magazine cap for `class` (what
/// [`reset_tuning`] restores).
pub fn default_class_mag_cap(class: usize) -> u32 {
    MAG_CAP[class]
}

/// Set the foreign-bucket ship threshold (clamped to `1..=1024`; segment
/// counts pack into 16 bits, so the bound is generous). Returns the
/// applied value.
pub fn set_remote_batch(batch: u32) -> u32 {
    let batch = batch.clamp(1, 1024);
    REMOTE_BATCH_RT.store(batch, Ordering::Relaxed);
    batch
}

/// The current foreign-bucket ship threshold.
pub fn remote_batch() -> u32 {
    REMOTE_BATCH_RT.load(Ordering::Relaxed)
}

/// Restore every runtime knob to its compile-time default (test hygiene:
/// tuning experiments must not leak into later measurements).
pub fn reset_tuning() {
    for (class, slot) in MAG_CAP_RT.iter().enumerate() {
        slot.store(MAG_CAP[class], Ordering::Relaxed);
    }
    REMOTE_BATCH_RT.store(REMOTE_BATCH, Ordering::Relaxed);
}

#[repr(C)]
struct SlabHeader {
    magic: u32,
    class: u16,
    /// Owning shard — a *routing hint*, not a correctness invariant: any
    /// block may legally travel through any shard of its class. Atomic
    /// because refills re-stamp stolen slabs (see [`restamp`]) while other
    /// threads concurrently read the hint on their free path; a racing
    /// reader sees the old or the new owner, and both route validly.
    shard: AtomicU16,
    /// Sweep scratch, written only by the (serialized) reclaimer: the
    /// pass id that last visited this slab and how many of its blocks
    /// that pass found idle. Zero fast-path cost — alloc/dealloc never
    /// read or write these — and they fill what used to be header
    /// padding, so the header stays 16 bytes.
    sweep_gen: AtomicU32,
    free_seen: AtomicU32,
}

/// A Treiber stack of raw blocks; the link is the block's first word.
///
/// Safety relies on the same two depot arguments: the version tag defeats
/// ABA between a pop's load and CAS, and slab memory is never unmapped, so
/// reading a lost block's link word cannot fault.
struct BlockStack {
    head: AtomicU64,
}

impl BlockStack {
    const fn new() -> Self {
        BlockStack { head: AtomicU64::new(0) }
    }

    #[inline]
    unsafe fn link_of(block: *mut u8) -> &'static AtomicUsize {
        // Blocks are >= 16 bytes and 16-aligned; the first word holds the
        // intrusive link while the block is free.
        unsafe { &*(block as *const AtomicUsize) }
    }

    /// Push one block (a chain of length 1).
    fn push(&self, block: *mut u8) {
        self.push_chain(block, block);
    }

    /// Push a pre-linked chain `head..=tail` (interior links already set,
    /// only `tail`'s link is written here). Lock-free, single CAS loop.
    fn push_chain(&self, chain_head: *mut u8, chain_tail: *mut u8) {
        let ptr_bits = chain_head as u64;
        debug_assert_eq!(ptr_bits & !PTR_MASK, 0, "block address exceeds 48 bits");
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // The chain is still ours: plain store of the tail link.
            unsafe { Self::link_of(chain_tail) }
                .store((head & PTR_MASK) as usize, Ordering::Relaxed);
            let tagged = ptr_bits | (head & !PTR_MASK).wrapping_add(TAG_ONE);
            match self.head.compare_exchange_weak(
                head,
                tagged,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Pop the top block. `None` when empty.
    fn pop(&self) -> Option<*mut u8> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let block = (head & PTR_MASK) as *mut u8;
            if block.is_null() {
                return None;
            }
            // Type-stable memory: safe even if a rival pop already won the
            // block; the tag CAS below rejects our stale view.
            let next = unsafe { Self::link_of(block) }.load(Ordering::Relaxed) as u64;
            let tagged = (next & PTR_MASK) | (head & !PTR_MASK).wrapping_add(TAG_ONE);
            match self.head.compare_exchange_weak(head, tagged, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(block),
                Err(current) => head = current,
            }
        }
    }

    /// Detach the entire stack — the MPSC remote-drain op. Returns the
    /// old chain head (null when empty); the chain is fully linked
    /// because pushers write the link *before* their publishing CAS.
    /// A CAS loop rather than a plain `swap` so the version tag is
    /// *preserved and bumped*, never reset: slab retirement depends on a
    /// drained block's old (ptr, tag) pair staying dead forever, so a
    /// reader whose pop straddled the drain can never win a stale CAS
    /// against a block that has since been retired and recarved.
    fn take_all(&self) -> *mut u8 {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            if head & PTR_MASK == 0 {
                return std::ptr::null_mut();
            }
            let empty = (head & !PTR_MASK).wrapping_add(TAG_ONE);
            match self.head.compare_exchange_weak(head, empty, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return (head & PTR_MASK) as *mut u8,
                Err(current) => head = current,
            }
        }
    }

    #[inline]
    fn is_empty_hint(&self) -> bool {
        self.head.load(Ordering::Relaxed) & PTR_MASK == 0
    }
}

struct ClassShard {
    /// Central free stack: flushed surplus and teardown remainders.
    free: BlockStack,
    /// Approximate population of `free` (refills skip empty shards).
    free_len: AtomicUsize,
    /// Remote-free queue: blocks freed by non-home threads. MPSC —
    /// anyone pushes, home threads drain via `take_all`.
    remote: BlockStack,
    /// Ledger: blocks ever pushed remotely / drained by an owner. The
    /// invariant `pushes == drained + pending` is what the stress test
    /// reconciles.
    remote_pushes: AtomicU64,
    remote_drained: AtomicU64,
}

impl ClassShard {
    const fn new() -> Self {
        ClassShard {
            free: BlockStack::new(),
            free_len: AtomicUsize::new(0),
            remote: BlockStack::new(),
            remote_pushes: AtomicU64::new(0),
            remote_drained: AtomicU64::new(0),
        }
    }
}

struct ClassState {
    shards: [ClassShard; CLASS_SHARDS],
}

impl ClassState {
    const fn new() -> Self {
        ClassState { shards: [const { ClassShard::new() }; CLASS_SHARDS] }
    }
}

static CLASSES: [ClassState; NUM_CLASSES] = [const { ClassState::new() }; NUM_CLASSES];

/// Counters that left per-thread caches (exited threads, cache-less
/// paths). `stats()` adds the calling thread's live cache on top.
struct Folded {
    cache_hits: AtomicU64,
    class_refills: AtomicU64,
    slabs_carved: AtomicU64,
    passthrough_allocs: AtomicU64,
    passthrough_frees: AtomicU64,
}

static FOLDED: Folded = Folded {
    cache_hits: AtomicU64::new(0),
    class_refills: AtomicU64::new(0),
    slabs_carved: AtomicU64::new(0),
    passthrough_allocs: AtomicU64::new(0),
    passthrough_frees: AtomicU64::new(0),
};

/// A minimal test-and-set spinlock for the cache registry and the
/// profiler's shared tables. Holders never allocate and never block, so
/// contention is bounded by a registry walk or a ring append.
pub(crate) struct Spin(AtomicBool);

impl Spin {
    pub(crate) const fn new() -> Self {
        Spin(AtomicBool::new(false))
    }

    pub(crate) fn lock(&self) -> SpinGuard<'_> {
        while self
            .0
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        SpinGuard(self)
    }
}

pub(crate) struct SpinGuard<'a>(&'a Spin);

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        (self.0).0.store(false, Ordering::Release);
    }
}

/// Per-class counters folded out of exited caches, plus the cache-less
/// (DEAD-path) increments. Writers use `Release`, the gauge collector
/// reads with `Acquire` — the per-class half of the fold protocol.
struct ClassFold {
    allocs: AtomicU64,
    frees: AtomicU64,
}

static FOLDED_CLASS: [ClassFold; NUM_CLASSES] =
    [const { ClassFold { allocs: AtomicU64::new(0), frees: AtomicU64::new(0) } }; NUM_CLASSES];

/// Per-class refill/flush churn folded out of exited caches, so the
/// adaptive controller's signal survives thread turnover.
struct ChurnFold {
    refills: AtomicU64,
    flushes: AtomicU64,
}

static FOLDED_CHURN: [ChurnFold; NUM_CLASSES] =
    [const { ChurnFold { refills: AtomicU64::new(0), flushes: AtomicU64::new(0) } }; NUM_CLASSES];

/// Slabs carved per class, bumped inside [`carve_slab`] *before* the first
/// block of the slab can be served — so any observer that sees a block's
/// alloc count (via the release/acquire counter chain) also sees its slab
/// mapped. Reading this array *last* in a gauge collection is what makes
/// `live_bytes <= mapped_bytes` hold for every snapshot.
static MAPPED_SLABS: [AtomicU64; NUM_CLASSES] = [const { AtomicU64::new(0) }; NUM_CLASSES];

/// High-water mark of the per-class live-byte estimate. Folded on every
/// gauge collection *and* at every thread teardown from the per-thread
/// high-water marks ([`LocalClass::peak_net`]), so a burst that rises and
/// falls entirely between collections still registers — the lag is
/// bounded by one refill batch per thread, not by the snapshot cadence.
static PEAK_LIVE_BYTES: [AtomicU64; NUM_CLASSES] = [const { AtomicU64::new(0) }; NUM_CLASSES];

// ------------------------------------------------------------- retirement
//
// The slab-retirement machinery (DESIGN.md §13). Mechanism only — the
// watermark policy and the background reclaimer live in `crate::reclaim`.

/// Serializes reclaim passes: one sweep at a time, so the per-slab sweep
/// scratch in [`SlabHeader`] has a single writer. Alloc/dealloc paths
/// never touch this lock.
static RECLAIM_PASS: Spin = Spin::new();

/// Mutual exclusion between the *retire phase* of a pass (the
/// [`MAPPED_SLABS`] decrements) and a gauge collection. The two-pass
/// gauge fold argues `live <= mapped` from mapped counts being monotone
/// while it runs; retirement breaks monotonicity, so it must not
/// interleave a collection. Lock order: [`RECLAIM_PASS`] → this →
/// (inside collection only) [`REGISTRY`]. Nothing allocates under it.
static RETIRE_GAUGE: Spin = Spin::new();

/// Reclaim pass sequence. `PASS_SEQ` is bumped when a pass begins;
/// `PASS_DONE` is published (release) when its retire phase — header
/// scrubs, `madvise` calls, ledger updates — has fully completed. Slabs
/// retired by pass N enter the quarantine pool only after `PASS_DONE ==
/// N`, so a recarve can never observe a half-retired slab.
static PASS_SEQ: AtomicU64 = AtomicU64::new(0);
static PASS_DONE: AtomicU64 = AtomicU64::new(0);

/// Bumped at the start of every reclaim pass. Threads compare it against
/// their cache's `flush_epoch` at the cold refill/flush points and flush
/// everything they hold when it moved — the epoch-gated excision that
/// lets a pass (the *next* one) sweep blocks parked in other threads'
/// caches without ever touching a foreign cache directly.
static CACHE_FLUSH_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Cumulative retirement ledger: slabs retired per class, slabs whose
/// pages `madvise` actually released, and retired slabs recarved back
/// into service. `reclaimed - recarved` slabs are sitting in quarantine.
static RECLAIMED_SLABS: [AtomicU64; NUM_CLASSES] = [const { AtomicU64::new(0) }; NUM_CLASSES];
static ADVISED_SLABS: AtomicU64 = AtomicU64::new(0);
static RECARVED_SLABS: AtomicU64 = AtomicU64::new(0);

/// Quarantine pool of retired slabs: an intrusive LIFO threaded through
/// the slabs' own first words (the pages were just advised away; writing
/// the link touches one page back in, which also pre-faults the header
/// page a future recarve writes anyway). Guarded by [`RETIRED`]; the
/// critical sections are pointer swaps only — **never** allocate under
/// this lock, `carve_slab` takes it.
static RETIRED: Spin = Spin::new();
static RETIRED_HEAD: AtomicUsize = AtomicUsize::new(0);
static RETIRED_LEN: AtomicUsize = AtomicUsize::new(0);

/// `madvise(base, len, MADV_DONTNEED)` via raw syscall (no libc in the
/// dependency tree). Returns whether the kernel actually dropped the
/// pages; on other targets this is a no-op and retirement degrades to
/// quarantine-without-release (the accounting stays correct either way).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn advise_dont_need(base: *mut u8, len: usize) -> bool {
    const SYS_MADVISE: usize = 28;
    const MADV_DONTNEED: usize = 4;
    let ret: isize;
    // SAFETY: madvise on a mapping we own; DONTNEED cannot fault and the
    // syscall clobbers only rcx/r11 beyond its return register.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE => ret,
            in("rdi") base as usize,
            in("rsi") len,
            in("rdx") MADV_DONTNEED,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn advise_dont_need(_base: *mut u8, _len: usize) -> bool {
    false
}

/// Pop a quarantined slab for recarving. Everything in the pool belongs
/// to a completed pass (pushes happen after `PASS_DONE` is published), so
/// no eligibility check is needed beyond the pop itself.
fn retired_pop() -> Option<*mut u8> {
    if RETIRED_HEAD.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let _g = RETIRED.lock();
    let head = RETIRED_HEAD.load(Ordering::Relaxed);
    if head == 0 {
        return None;
    }
    // SAFETY: the link was written by `retired_push` and the slab is
    // exclusively the pool's until popped.
    let next = unsafe { *(head as *const usize) };
    RETIRED_HEAD.store(next, Ordering::Relaxed);
    RETIRED_LEN.fetch_sub(1, Ordering::Relaxed);
    RECARVED_SLABS.fetch_add(1, Ordering::Relaxed);
    Some(head as *mut u8)
}

fn retired_push(base: *mut u8) {
    let _g = RETIRED.lock();
    // SAFETY: the slab is exclusively ours (fully retired, not yet in the
    // pool); its first word becomes the intrusive link.
    unsafe { *(base as *mut usize) = RETIRED_HEAD.load(Ordering::Relaxed) };
    RETIRED_HEAD.store(base as usize, Ordering::Relaxed);
    RETIRED_LEN.fetch_add(1, Ordering::Relaxed);
}

/// Slabs currently parked in the retirement quarantine pool.
pub fn retired_pool_len() -> usize {
    RETIRED_LEN.load(Ordering::Relaxed)
}

/// What one [`sweep_and_retire`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Blocks drained out of central stacks and remote queues (survivors
    /// were pushed back to their stamped shards).
    pub swept_blocks: u64,
    /// Fully-idle slabs retired (removed from mapped accounting).
    pub retired_slabs: u64,
    pub retired_bytes: u64,
    /// Retired slabs whose pages the kernel confirmed released.
    pub advised_slabs: u64,
}

/// Cumulative retirement totals:
/// `(reclaimed_slabs, reclaimed_bytes, recarved_slabs, advised_slabs)`.
pub fn reclaim_totals() -> (u64, u64, u64, u64) {
    let slabs: u64 = RECLAIMED_SLABS.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    (
        slabs,
        slabs * SLAB_BYTES as u64,
        RECARVED_SLABS.load(Ordering::Relaxed),
        ADVISED_SLABS.load(Ordering::Relaxed),
    )
}

/// Sweep-retire bit packed into `SlabHeader::sweep_gen`: set while the
/// current pass has marked the slab for retirement.
const RETIRE_BIT: u32 = 0x8000_0000;

/// One retirement pass (the tentpole mechanism). Drains every class's
/// central stacks and remote queues into a private working set, buckets
/// the blocks by slab via the address mask, and retires every slab whose
/// *entire* block population turned up in the sweep — those blocks can
/// have no live owner, no cache seat, and no in-flight remote chain,
/// because all three would have kept at least one block out of the
/// shared levels. Survivor blocks are pushed back to their stamped
/// shards in per-shard chains. Retired slabs leave [`MAPPED_SLABS`]
/// under the [`RETIRE_GAUGE`] lock (so a gauge collection never sees
/// mapped shrink mid-fold), get their pages released with
/// `madvise(MADV_DONTNEED)`, and enter the quarantine pool once the
/// pass's completion is published.
///
/// Retirement stops once total mapped bytes drop to `target_mapped_bytes`
/// (0 = retire everything idle). Blocks parked in *other* threads'
/// caches are not excised directly — the pass bumps
/// [`CACHE_FLUSH_EPOCH`], those threads flush at their next cold point,
/// and the following pass sweeps what they released (convergence over
/// passes, not blocking excision).
pub fn sweep_and_retire(target_mapped_bytes: u64) -> SweepOutcome {
    let _pass = RECLAIM_PASS.lock();
    let pass_id = PASS_SEQ.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    // Ask every thread (including this one, directly) to release its
    // cached blocks: ours join this pass's sweep, theirs the next one's.
    CACHE_FLUSH_EPOCH.fetch_add(1, Ordering::Relaxed);
    flush_thread_cache();

    let mapped_total: u64 =
        MAPPED_SLABS.iter().map(|m| m.load(Ordering::Relaxed)).sum::<u64>() * SLAB_BYTES as u64;
    let mut shed_budget = mapped_total.saturating_sub(target_mapped_bytes) as i64;
    let mut out = SweepOutcome::default();
    if shed_budget <= 0 {
        return out;
    }
    let mut quarantine: Vec<*mut u8> = Vec::new();
    for class in 0..NUM_CLASSES {
        sweep_class(class, pass_id, &mut shed_budget, &mut out, &mut quarantine);
    }
    // Publish completion, then expose this pass's slabs for recarving:
    // every header scrub and madvise above happened-before the push.
    PASS_DONE.store(pass_id, Ordering::Release);
    for base in quarantine {
        retired_push(base);
    }
    out
}

/// The truncated pass id written into headers' `sweep_gen` (31 bits — a
/// stale value can only collide after 2^31 passes visit the same slab
/// without it being carved in between, and a collision merely skips one
/// retirement opportunity).
fn pass_stamp(pass_id: u64) -> u32 {
    (pass_id as u32) & !RETIRE_BIT
}

fn sweep_class(
    class: usize,
    pass_id: u64,
    shed_budget: &mut i64,
    out: &mut SweepOutcome,
    quarantine: &mut Vec<*mut u8>,
) {
    if *shed_budget <= 0 {
        return;
    }
    let stamp = pass_stamp(pass_id);
    let bytes = class_bytes(class);
    let nblocks = ((SLAB_BYTES - HEADER_BYTES) / bytes) as u32;
    let state = &CLASSES[class];

    // Phase 1: drain every shard's central stack and remote queue into a
    // private working set. Allocating the Vec is safe here — the alloc
    // paths never take RECLAIM_PASS, and neither RETIRE_GAUGE nor
    // RETIRED is held yet.
    let mut blocks: Vec<*mut u8> = Vec::new();
    let mut slabs: Vec<*mut u8> = Vec::new();
    for shard in &state.shards {
        let mut central = 0usize;
        let mut b = shard.free.take_all();
        while !b.is_null() {
            blocks.push(b);
            central += 1;
            b = unsafe { *(b as *mut *mut u8) };
        }
        if central > 0 {
            shard.free_len.fetch_sub(central, Ordering::Relaxed);
        }
        let mut remote = 0usize;
        // Remote chains are walked block-by-block (the segment stamps
        // only matter for O(batches) adoption; a sweep touches every
        // block anyway to bucket it by slab).
        let mut b = shard.remote.take_all();
        while !b.is_null() {
            blocks.push(b);
            remote += 1;
            b = unsafe { *(b as *mut *mut u8) };
        }
        if remote > 0 {
            shard.remote_drained.fetch_add(remote as u64, Ordering::Relaxed);
        }
    }
    out.swept_blocks += blocks.len() as u64;

    // Phase 2: bucket by slab. First visit in this pass resets the
    // slab's idle count; `free_seen > nblocks` means the working set
    // held a duplicate (a double-free upstream) — such a slab is never
    // retired, the safe direction.
    for &b in &blocks {
        let header = ((b as usize) & !SLAB_MASK) as *mut SlabHeader;
        let h = unsafe { &*header };
        if h.sweep_gen.load(Ordering::Relaxed) != stamp {
            h.sweep_gen.store(stamp, Ordering::Relaxed);
            h.free_seen.store(0, Ordering::Relaxed);
            slabs.push(header as *mut u8);
        }
        h.free_seen.store(h.free_seen.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    // Phase 3: mark retirements while the shed budget lasts.
    let mut retiring = 0u64;
    for &base in &slabs {
        if *shed_budget <= 0 {
            break;
        }
        let h = unsafe { &*(base as *const SlabHeader) };
        if h.free_seen.load(Ordering::Relaxed) == nblocks {
            h.sweep_gen.store(stamp | RETIRE_BIT, Ordering::Relaxed);
            retiring += 1;
            *shed_budget -= SLAB_BYTES as i64;
        }
    }

    // Phase 4: push survivors back to their stamped shards, one chain
    // per shard. Blocks of retiring slabs simply stay behind.
    let mut heads = [std::ptr::null_mut::<u8>(); CLASS_SHARDS];
    let mut tails = [std::ptr::null_mut::<u8>(); CLASS_SHARDS];
    let mut counts = [0usize; CLASS_SHARDS];
    for &b in &blocks {
        let header = ((b as usize) & !SLAB_MASK) as *const SlabHeader;
        let h = unsafe { &*header };
        if h.sweep_gen.load(Ordering::Relaxed) & RETIRE_BIT != 0 {
            continue;
        }
        let s = h.shard.load(Ordering::Relaxed) as usize % CLASS_SHARDS;
        unsafe { *(b as *mut *mut u8) = heads[s] };
        if heads[s].is_null() {
            tails[s] = b;
        }
        heads[s] = b;
        counts[s] += 1;
    }
    for s in 0..CLASS_SHARDS {
        if !heads[s].is_null() {
            state.shards[s].free.push_chain(heads[s], tails[s]);
            state.shards[s].free_len.fetch_add(counts[s], Ordering::Relaxed);
        }
    }
    if retiring == 0 {
        return;
    }

    // Phase 5: the retire phase proper. Mapped decrements are batched
    // under RETIRE_GAUGE so a concurrent gauge fold sees mapped counts
    // either before or after the whole batch, never mid-shrink.
    {
        let _g = RETIRE_GAUGE.lock();
        MAPPED_SLABS[class].fetch_sub(retiring, Ordering::Relaxed);
    }
    RECLAIMED_SLABS[class].fetch_add(retiring, Ordering::Relaxed);
    out.retired_slabs += retiring;
    out.retired_bytes += retiring * SLAB_BYTES as u64;
    for &base in &slabs {
        let h = unsafe { &*(base as *const SlabHeader) };
        if h.sweep_gen.load(Ordering::Relaxed) & RETIRE_BIT == 0 {
            continue;
        }
        // Scrub the magic so any late header read of a retired slab
        // trips the debug integrity asserts instead of routing.
        unsafe { (*(base as *mut SlabHeader)).magic = 0 };
        if advise_dont_need(base, SLAB_BYTES) {
            ADVISED_SLABS.fetch_add(1, Ordering::Relaxed);
            out.advised_slabs += 1;
        }
        quarantine.push(base);
    }
}

/// Fault-injected carve fallbacks outstanding per class. These chunks
/// never enter slab accounting; the gauge keeps the live/mapped
/// reconciliation exact while faults are armed.
static FALLBACK_ALLOCS: [AtomicU64; NUM_CLASSES] = [const { AtomicU64::new(0) }; NUM_CLASSES];
static FALLBACK_FREES: [AtomicU64; NUM_CLASSES] = [const { AtomicU64::new(0) }; NUM_CLASSES];

/// Live-cache registry: an intrusive singly-linked list of every
/// registered [`ThreadCache`], guarded by [`REGISTRY`]. Gauge collection
/// walks it to read live threads' owner-only counters; teardown unlinks
/// and folds under the same hold, so a concurrent collection sees each
/// cache's counters exactly once (never both live and folded).
static REGISTRY: Spin = Spin::new();
static REGISTRY_HEAD: AtomicUsize = AtomicUsize::new(0);
static CACHE_ORDINALS: AtomicU32 = AtomicU32::new(0);

/// Live caches homed on each shard. New caches claim the least-occupied
/// slot (see [`claim_home_shard`]): successive thread generations inherit
/// the shards — and the slabs — their predecessors stocked, instead of
/// marching round-robin away from the warm memory and stealing it back
/// one contended pop at a time.
static SHARD_OCCUPANCY: [AtomicU32; CLASS_SHARDS] = [const { AtomicU32::new(0) }; CLASS_SHARDS];

/// Claim the least-occupied home shard with a CAS (re-scanning on a lost
/// race, so concurrent claimers spread out instead of herding).
fn claim_home_shard() -> usize {
    loop {
        let mut best = 0usize;
        let mut best_occ = u32::MAX;
        for (i, slot) in SHARD_OCCUPANCY.iter().enumerate() {
            let occ = slot.load(Ordering::Relaxed);
            if occ < best_occ {
                best = i;
                best_occ = occ;
            }
        }
        if SHARD_OCCUPANCY[best]
            .compare_exchange(best_occ, best_occ + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return best;
        }
    }
}

struct LocalClass {
    head: *mut u8,
    /// Population of `head`'s list. Owner-written with plain load/store
    /// pairs (never a locked RMW); atomic only so gauge collection can
    /// read the parked-magazine population cross-thread.
    count: AtomicU32,
    /// An adopted remote chain, served lazily: a refill parks the kept
    /// prefix here *without walking it* (see the Level-2 zero-touch
    /// adoption in [`refill`]); each block's link is read only when that
    /// block is handed out — a load on the very line the caller is about
    /// to write. Local frees still push onto `head`, which is preferred
    /// on allocation, so the chain drains only when the hot list is dry.
    chain: *mut u8,
    chain_tail: *mut u8,
    chain_left: AtomicU32,
    /// Slab blocks allocated / freed in this class by this thread.
    /// Owner-only writes: a relaxed load and a *release* store — the
    /// release pairs with the collector's acquire read so that any
    /// observed count implies the underlying slab is already visible in
    /// [`MAPPED_SLABS`] (the gauge fold protocol, DESIGN.md §9). Bumped
    /// *after* a block is served, never before.
    allocs: AtomicU64,
    frees: AtomicU64,
    /// High-water mark of this thread's net block balance
    /// (`allocs - frees`), observed at the cold refill points — a refill
    /// fires whenever the cache runs dry, so a rising burst is sampled at
    /// least once per batch and the mark lags the true thread peak by at
    /// most one refill batch. Owner-written; folded into
    /// [`PEAK_LIVE_BYTES`] by gauge collections and the teardown fold
    /// (the inter-snapshot peak fix).
    peak_net: AtomicU64,
    /// Allocations until the next profiler tick; 0 means the next alloc
    /// takes the cold [`sample_tick`] (which resets it).
    sample_down: u32,
}

/// Foreign-free bucket: an intrusive chain of blocks stamped with one
/// non-home shard, built by prepending — the first block filed is the
/// chain's tail, so flushing needs no walk.
struct ForeignBucket {
    head: *mut u8,
    tail: *mut u8,
    count: u32,
}

/// Blocks per foreign bucket before it is batched onto the owner's remote
/// queue (one `push_chain` CAS per batch).
const REMOTE_BATCH: u32 = 32;

/// Per-thread state. Allocated from [`System`] on a thread's first classed
/// operation; flushed, folded and freed by the TLS drop guard.
struct ThreadCache {
    classes: [LocalClass; NUM_CLASSES],
    /// Per-(class, owner-shard) foreign-free buckets. ~5 KiB of nulls in
    /// the common case; only the classes a thread actually frees across
    /// threads ever touch their row.
    foreign: [[ForeignBucket; CLASS_SHARDS]; NUM_CLASSES],
    home: usize,
    /// The [`CACHE_FLUSH_EPOCH`] this cache last synchronized with
    /// (owner-only, checked at the cold refill/flush points). Zero-init
    /// matches the epoch's initial value.
    flush_epoch: u64,
    /// Registry link (guarded by [`REGISTRY`]) and a process-unique
    /// ordinal for thread attribution in the profiler.
    next: *mut ThreadCache,
    ordinal: u32,
    // Owner-only counters (relaxed load + store, no locked RMW on any
    // alloc path); atomic so gauge collection can read them cross-thread.
    // Cache hits are not counted directly: every classed alloc either
    // pops the local list or takes `refill`, so hits = allocs - refills.
    refills: AtomicU64,
    slabs: AtomicU64,
    /// Per-class refill / surplus-flush counts: the churn signal the
    /// adaptive controller steers magazine caps by. Owner-only stores on
    /// the already-cold refill/flush paths; wrapping u32s are fine — the
    /// controller works on per-epoch deltas.
    class_refills: [AtomicU32; NUM_CLASSES],
    class_flushes: [AtomicU32; NUM_CLASSES],
    /// Sampled allocation-site counts per (class, caller tag): the
    /// profiler's per-thread table, folded on exit and summed in place by
    /// a live collection.
    samples: [[AtomicU32; HEAP_PROFILE_TAGS]; NUM_CLASSES],
    sample_total: AtomicU64,
}

/// Post-teardown sentinel: "this thread had a cache and it is gone".
/// Never dereferenced.
const DEAD: *mut ThreadCache = usize::MAX as *mut ThreadCache;

thread_local! {
    // Const-init: reading it never allocates and registers no destructor,
    // so it is safe to touch from inside alloc/dealloc at any point in a
    // thread's life, including during TLS teardown.
    static CACHE: Cell<*mut ThreadCache> = const { Cell::new(std::ptr::null_mut()) };
    // The flush guard is a separate, lazily-registered key: its destructor
    // runs at thread exit, after which CACHE holds DEAD.
    static GUARD: CacheGuard = const { CacheGuard };
}

struct CacheGuard;

impl Drop for CacheGuard {
    fn drop(&mut self) {
        teardown_cache();
    }
}

#[cold]
fn init_cache() -> *mut ThreadCache {
    let layout = Layout::new::<ThreadCache>();
    // SAFETY: ThreadCache has a known, non-zero layout; zeroed memory is a
    // valid ThreadCache (null list heads, zero counts) except for `home`,
    // patched below.
    let cache = unsafe { System.alloc_zeroed(layout) } as *mut ThreadCache;
    if cache.is_null() {
        return DEAD;
    }
    unsafe {
        (*cache).home = claim_home_shard();
        (*cache).ordinal = CACHE_ORDINALS.fetch_add(1, Ordering::Relaxed);
    }
    {
        let _g = REGISTRY.lock();
        unsafe { (*cache).next = REGISTRY_HEAD.load(Ordering::Relaxed) as *mut ThreadCache };
        REGISTRY_HEAD.store(cache as usize, Ordering::Relaxed);
    }
    CACHE.set(cache);
    // Register the flush guard *after* the cache pointer is in place. If
    // the thread is already past TLS teardown the registration fails —
    // flush immediately and run DEAD from here on.
    if GUARD.try_with(|_| ()).is_err() {
        teardown_cache();
        return DEAD;
    }
    cache
}

fn teardown_cache() {
    let cache = CACHE.get();
    CACHE.set(DEAD);
    if cache.is_null() || cache == DEAD {
        return;
    }
    let cache_ref = unsafe { &mut *cache };
    flush_all(cache_ref);
    SHARD_OCCUPANCY[cache_ref.home].fetch_sub(1, Ordering::Relaxed);
    // Unlink and fold under one registry hold: a concurrent gauge
    // collection sees this cache's counters exactly once — still linked,
    // or already folded, never neither and never both.
    {
        let _g = REGISTRY.lock();
        let mut prev: *mut ThreadCache = std::ptr::null_mut();
        let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *mut ThreadCache;
        while !cur.is_null() {
            if cur == cache {
                let next = unsafe { (*cur).next };
                if prev.is_null() {
                    REGISTRY_HEAD.store(next as usize, Ordering::Relaxed);
                } else {
                    unsafe { (*prev).next = next };
                }
                break;
            }
            prev = cur;
            cur = unsafe { (*cur).next };
        }
        // Record the process high-water before folding this cache away:
        // without this, a burst thread that rose and fell entirely
        // between gauge collections would take its peak to the grave.
        observe_peak_locked(Some(cache_ref));
        let mut allocs_total = 0u64;
        for (class, lc) in cache_ref.classes.iter().enumerate() {
            let a = lc.allocs.load(Ordering::Relaxed);
            allocs_total += a;
            FOLDED_CLASS[class].allocs.fetch_add(a, Ordering::Release);
            FOLDED_CLASS[class]
                .frees
                .fetch_add(lc.frees.load(Ordering::Relaxed), Ordering::Release);
            FOLDED_CHURN[class].refills.fetch_add(
                cache_ref.class_refills[class].load(Ordering::Relaxed) as u64,
                Ordering::Relaxed,
            );
            FOLDED_CHURN[class].flushes.fetch_add(
                cache_ref.class_flushes[class].load(Ordering::Relaxed) as u64,
                Ordering::Relaxed,
            );
        }
        let refills = cache_ref.refills.load(Ordering::Relaxed);
        FOLDED.cache_hits.fetch_add(allocs_total.saturating_sub(refills), Ordering::Relaxed);
        FOLDED.class_refills.fetch_add(refills, Ordering::Relaxed);
        FOLDED.slabs_carved.fetch_add(cache_ref.slabs.load(Ordering::Relaxed), Ordering::Relaxed);
        crate::heap_profile::fold_thread_samples(
            &cache_ref.samples,
            cache_ref.ordinal,
            cache_ref.sample_total.load(Ordering::Relaxed),
        );
    }
    unsafe { System.dealloc(cache as *mut u8, Layout::new::<ThreadCache>()) };
}

/// Fold the per-thread high-water marks into [`PEAK_LIVE_BYTES`]: per
/// class, the folded net of exited threads (their real remaining
/// contribution) plus every registered cache's `peak_net` (plus `extra`,
/// a cache mid-teardown that is already unlinked). The sum is a
/// *conservative* watermark — per-thread peaks need not be simultaneous —
/// so it is clamped to the class's currently-mapped bytes, which keeps
/// `peak <= historical max mapped` while still dominating every true
/// live value. Caller must hold [`REGISTRY`].
fn observe_peak_locked(extra: Option<&ThreadCache>) {
    for class in 0..NUM_CLASSES {
        let folded_net = FOLDED_CLASS[class].allocs.load(Ordering::Acquire) as i64
            - FOLDED_CLASS[class].frees.load(Ordering::Acquire) as i64;
        let mut hw = folded_net.max(0) as u64;
        let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
        while !cur.is_null() {
            let cache = unsafe { &*cur };
            hw += cache.classes[class].peak_net.load(Ordering::Relaxed);
            cur = cache.next;
        }
        if let Some(c) = extra {
            hw += c.classes[class].peak_net.load(Ordering::Relaxed);
        }
        if hw > 0 {
            let mapped = MAPPED_SLABS[class].load(Ordering::Relaxed) * SLAB_BYTES as u64;
            let candidate = (hw * class_bytes(class) as u64).min(mapped);
            PEAK_LIVE_BYTES[class].fetch_max(candidate, Ordering::AcqRel);
        }
    }
}

/// Owner-only counter bump: a relaxed load and a release store — one
/// plain increment on x86, never a locked RMW. The release half is what
/// lets the gauge collector's acquire read order this count against the
/// slab-mapping increments that preceded it (DESIGN.md §9).
#[inline]
fn owner_bump(counter: &AtomicU64) {
    counter.store(counter.load(Ordering::Relaxed).wrapping_add(1), Ordering::Release);
}

/// Owner-only adjustment of a parked-population gauge (order-insensitive:
/// readers treat these as approximate, so relaxed stores suffice).
#[inline]
fn owner_add32(counter: &AtomicU32, n: u32) {
    counter.store(counter.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
}

#[inline]
fn owner_sub32(counter: &AtomicU32, n: u32) {
    counter.store(counter.load(Ordering::Relaxed).wrapping_sub(n), Ordering::Relaxed);
}

/// While the profiler is disabled, re-check its period only once per this
/// many classed allocs per (thread, class) — the whole disabled-mode cost
/// is one countdown branch per alloc plus that rare cold call.
const SAMPLE_RECHECK: u32 = 512;

/// Profiler tick: reached every `sample_period` classed allocs per
/// (thread, class) while enabled, every [`SAMPLE_RECHECK`] while not.
/// Attributes the sampled alloc to (class, current caller tag, thread).
/// Re-entrancy-safe by construction: it touches only the thread's own
/// cache and two const-init TLS cells, never the heap.
#[cold]
fn sample_tick(cache: &mut ThreadCache, class: usize) {
    let period = crate::heap_profile::sample_period();
    if period == 0 {
        cache.classes[class].sample_down = SAMPLE_RECHECK;
        return;
    }
    cache.classes[class].sample_down = period - 1;
    let tag = crate::heap_profile::current_tag() as usize % HEAP_PROFILE_TAGS;
    let cell = &cache.samples[class][tag];
    cell.store(cell.load(Ordering::Relaxed).wrapping_add(1), Ordering::Release);
    let total = &cache.sample_total;
    total.store(total.load(Ordering::Relaxed).wrapping_add(1), Ordering::Release);
}

/// Classed allocation entry: thread-cache hit or the cold ladder. The
/// per-class alloc count is bumped *after* a block is in hand (and never
/// for fault-fallback chunks), so a counted block always has its slab
/// already visible in [`MAPPED_SLABS`].
#[inline]
fn alloc_class(class: usize) -> *mut u8 {
    let cache = CACHE.get();
    if cache.is_null() || cache == DEAD {
        return alloc_class_cold_entry(class, cache);
    }
    let cache = unsafe { &mut *cache };
    let lc = &mut cache.classes[class];
    let ticked = lc.sample_down == 0;
    if !ticked {
        lc.sample_down -= 1;
    }
    if ticked {
        sample_tick(cache, class);
    }
    let lc = &mut cache.classes[class];
    let head = lc.head;
    if !head.is_null() {
        lc.head = unsafe { *(head as *mut *mut u8) };
        owner_sub32(&lc.count, 1);
        owner_bump(&lc.allocs);
        return head;
    }
    let chain = lc.chain;
    if !chain.is_null() {
        lc.chain = unsafe { *(chain as *mut *mut u8) };
        owner_sub32(&lc.chain_left, 1);
        owner_bump(&lc.allocs);
        return chain;
    }
    let block = refill(cache, class);
    if !(block.is_null() || (cfg!(feature = "fault-inject") && is_fallback(block))) {
        owner_bump(&cache.classes[class].allocs);
    }
    block
}

#[cold]
fn alloc_class_cold_entry(class: usize, cache: *mut ThreadCache) -> *mut u8 {
    if cache == DEAD {
        // TLS teardown already ran; serve straight from the shared levels
        // and count against the folded ledger.
        FOLDED.class_refills.fetch_add(1, Ordering::Relaxed);
        return alloc_shared_counted(class);
    }
    let cache = init_cache();
    if cache == DEAD {
        FOLDED.class_refills.fetch_add(1, Ordering::Relaxed);
        return alloc_shared_counted(class);
    }
    alloc_class(class)
}

/// DEAD-path alloc, counted against the folded per-class ledger *after*
/// the block exists (mapped-before-counted, like the cached path) and
/// never for fallback chunks.
fn alloc_shared_counted(class: usize) -> *mut u8 {
    let block = alloc_shared(class, 0);
    if !(block.is_null() || (cfg!(feature = "fault-inject") && is_fallback(block))) {
        FOLDED_CLASS[class].allocs.fetch_add(1, Ordering::Release);
    }
    block
}

/// Cache-less single-block acquire (DEAD paths): remote drain of one
/// shard, then central pops, then a carve whose surplus all goes central.
fn alloc_shared(class: usize, home: usize) -> *mut u8 {
    let state = &CLASSES[class];
    for off in 0..CLASS_SHARDS {
        let shard = &state.shards[(home + off) % CLASS_SHARDS];
        if let Some(block) = shard.free.pop() {
            shard.free_len.fetch_sub(1, Ordering::Relaxed);
            return block;
        }
    }
    for off in 0..CLASS_SHARDS {
        let idx = (home + off) % CLASS_SHARDS;
        let shard = &state.shards[idx];
        let chain = shard.remote.take_all();
        if chain.is_null() {
            continue;
        }
        // Hop batch heads for the count + tail (see `seg_stamp`); keep the
        // first block, donate the rest central in one push.
        let mut n = 0usize;
        let mut tail = chain;
        let mut seg = chain;
        while !seg.is_null() {
            let (seg_tail, count) = seg_read(seg);
            n += count;
            tail = seg_tail;
            seg = unsafe { *(seg_tail as *mut *mut u8) };
        }
        shard.remote_drained.fetch_add(n as u64, Ordering::Relaxed);
        if n > 1 {
            let rest = unsafe { *(chain as *mut *mut u8) };
            shard.free.push_chain(rest, tail);
            shard.free_len.fetch_add(n - 1, Ordering::Relaxed);
        }
        return chain;
    }
    carve_shared(class, home)
}

/// Walk a detached chain: (length, tail pointer). The chain is private to
/// the caller, so plain loads suffice.
fn chain_measure(head: *mut u8) -> (usize, *mut u8) {
    let mut n = 1usize;
    let mut tail = head;
    unsafe {
        while !(*(tail as *mut *mut u8)).is_null() {
            tail = *(tail as *mut *mut u8);
            n += 1;
        }
    }
    (n, tail)
}

/// Epoch-gated excision hook, reached only from the already-cold
/// refill/flush paths: when a reclaim pass bumped [`CACHE_FLUSH_EPOCH`]
/// since this cache last looked, release everything the cache holds so
/// the *next* pass can sweep it. Returns whether a flush ran.
#[cold]
fn sync_flush_epoch(cache: &mut ThreadCache) -> bool {
    let epoch = CACHE_FLUSH_EPOCH.load(Ordering::Relaxed);
    if cache.flush_epoch == epoch {
        return false;
    }
    cache.flush_epoch = epoch;
    flush_all(cache);
    true
}

/// Observe this thread's net block balance for `class` and raise its
/// high-water mark. Called at refill time: a refill means the cache ran
/// dry, which every rising burst does at least once per batch.
#[inline]
fn observe_peak_net(lc: &LocalClass) {
    let net = lc.allocs.load(Ordering::Relaxed).wrapping_sub(lc.frees.load(Ordering::Relaxed));
    if (net as i64) > 0 && net > lc.peak_net.load(Ordering::Relaxed) {
        lc.peak_net.store(net, Ordering::Release);
    }
}

/// Thread-cache refill: remote drain → central pops → slab carve.
#[cold]
fn refill(cache: &mut ThreadCache, class: usize) -> *mut u8 {
    sync_flush_epoch(cache);
    observe_peak_net(&cache.classes[class]);
    owner_bump(&cache.refills);
    owner_add32(&cache.class_refills[class], 1);
    let cap = mag_cap(class) as usize;
    let state = &CLASSES[class];
    let home = cache.home;

    // Level 2: adopt this home shard's remote-free queue in one swap,
    // *zero-touch*: hop batch heads for counts (see [`seg_stamp`]), cut
    // the chain at the first batch boundary past `cap`, park the kept
    // prefix on `lc.chain` for lazy serving, and donate the suffix
    // central in one push. No block in the backlog is touched here —
    // kept blocks are first read when they are handed out, donated
    // blocks not at all. (Blocks on the home queue already carry the
    // home stamp — that is how they were routed here.)
    let shard = &state.shards[home];
    let chain = shard.remote.take_all();
    if !chain.is_null() {
        let mut kept = 0usize;
        let mut cut_tail = chain;
        let mut seg = chain;
        while !seg.is_null() && kept < cap {
            let (seg_tail, count) = seg_read(seg);
            kept += count;
            cut_tail = seg_tail;
            seg = unsafe { *(seg_tail as *mut *mut u8) };
        }
        let mut drained = kept;
        if !seg.is_null() {
            unsafe { *(cut_tail as *mut *mut u8) = std::ptr::null_mut() };
            let mut rest = 0usize;
            let mut tail = seg;
            let mut s = seg;
            while !s.is_null() {
                let (t, c) = seg_read(s);
                rest += c;
                tail = t;
                s = unsafe { *(t as *mut *mut u8) };
            }
            shard.free.push_chain(seg, tail);
            shard.free_len.fetch_add(rest, Ordering::Relaxed);
            drained += rest;
        }
        shard.remote_drained.fetch_add(drained as u64, Ordering::Relaxed);
        let lc = &mut cache.classes[class];
        debug_assert!(lc.chain.is_null(), "refill with a live adopted chain");
        lc.chain = unsafe { *(chain as *mut *mut u8) };
        lc.chain_tail = cut_tail;
        lc.chain_left.store((kept - 1) as u32, Ordering::Relaxed);
        return chain;
    }

    // Level 3: batch-pop central stacks, probing round-robin from home.
    // Stolen foreign blocks are re-stamped: the thief becomes the owner,
    // so its upcoming frees of these blocks go local instead of riding a
    // remote queue back to a shard that may have no thread at all.
    for off in 0..CLASS_SHARDS {
        let idx = (home + off) % CLASS_SHARDS;
        let s = &state.shards[idx];
        if s.free_len.load(Ordering::Relaxed) == 0 && s.free.is_empty_hint() {
            continue;
        }
        let want = (cap / 2 + 1).min(BATCH_MAX);
        let mut batch = [std::ptr::null_mut::<u8>(); BATCH_MAX];
        let mut taken = 0usize;
        while taken < want {
            match s.free.pop() {
                Some(block) => {
                    if idx != home {
                        restamp(block, home);
                    }
                    batch[taken] = block;
                    taken += 1;
                }
                None => break,
            }
        }
        if taken > 0 {
            s.free_len.fetch_sub(taken, Ordering::Relaxed);
            return link_batch(cache, class, &mut batch[..taken]);
        }
    }

    // Level 3½: before paying for a new slab, sweep *other* shards'
    // remote queues — blocks stranded on queues whose home threads have
    // gone idle would otherwise accumulate unbounded. Swept blocks are
    // adopted outright: the kept prefix is re-stamped to home, the
    // surplus goes to the source's central stack (where Level 3 finds
    // and re-stamps it later).
    for off in 1..CLASS_SHARDS {
        let idx = (home + off) % CLASS_SHARDS;
        let s = &state.shards[idx];
        let chain = s.remote.take_all();
        if !chain.is_null() {
            return adopt_chain(cache, class, s, chain, cap, Some(home));
        }
    }

    // Level 4: carve a fresh slab owned by this thread's home shard.
    carve(cache, class)
}

/// Largest refill batch linked into the local list in one go. Runtime
/// caps may exceed this; the `.min(BATCH_MAX)` clamps on the batch paths
/// keep the stack arrays bounded and simply spread a bigger cap over
/// more trips.
const BATCH_MAX: usize = 64;

/// Serve a refill batch: return the first block and thread the rest onto
/// the local list in batch order, so pops replay the order the blocks
/// were freed in (address-sorting the batch here was measured and lost —
/// the sort cost more than the locality it recovered).
fn link_batch(cache: &mut ThreadCache, class: usize, batch: &mut [*mut u8]) -> *mut u8 {
    debug_assert!(!batch.is_empty());
    let lc = &mut cache.classes[class];
    let n = batch.len();
    unsafe {
        for i in 1..n {
            let next = if i + 1 < n { batch[i + 1] } else { lc.head };
            *(batch[i] as *mut *mut u8) = next;
        }
    }
    if n > 1 {
        lc.head = batch[1];
        owner_add32(&lc.count, (n - 1) as u32);
    }
    batch[0]
}

/// Re-own `block`'s slab: write the home shard into the header hint. The
/// store races only against other hint reads/writes, all of which route
/// validly whichever side wins.
#[inline]
fn restamp(block: *mut u8, home: usize) {
    let header = ((block as usize) & !SLAB_MASK) as *const SlabHeader;
    unsafe { (*header).shard.store(home as u16, Ordering::Relaxed) };
}

/// Segment metadata: a remote queue is a chain of *flush batches*, and
/// each batch head's second word packs the batch's tail pointer (low 48
/// bits) with its block count (high 16). Written before the publishing
/// CAS and read only after a `take_all` detaches the chain, so the word
/// is never read and written concurrently. This is what keeps draining
/// O(batches): a drain can account for the blocks it does *not* adopt by
/// hopping batch heads instead of walking every block of a backlog that
/// can run to tens of thousands.
#[inline]
fn seg_stamp(head: *mut u8, tail: *mut u8, count: u32) {
    debug_assert!(count > 0 && (count as u64) < (1 << (64 - TAG_SHIFT)));
    let packed = (tail as u64 & PTR_MASK) | ((count as u64) << TAG_SHIFT);
    unsafe { *(head.add(8) as *mut u64) = packed };
}

/// The (tail, count) a [`seg_stamp`] left in a detached batch head.
#[inline]
fn seg_read(head: *mut u8) -> (*mut u8, usize) {
    let packed = unsafe { *(head.add(8) as *const u64) };
    ((packed & PTR_MASK) as *mut u8, (packed >> TAG_SHIFT) as usize)
}

/// Take up to `cap` blocks of a detached remote chain into the local list
/// (returning the first as the served block) and donate the surplus to
/// `source`'s central stack. Credits the whole chain to `source`'s
/// remote-drain ledger. With `restamp_home` set the chain was stolen from
/// a foreign queue: the *adopted* blocks are re-stamped (the thief now
/// owns them); donated surplus keeps its stamp — the stamp is a routing
/// hint, so central blocks with a foreign stamp still route validly, and
/// skipping them is what keeps this walk O(adopted + batches).
fn adopt_chain(
    cache: &mut ThreadCache,
    class: usize,
    source: &ClassShard,
    chain: *mut u8,
    cap: usize,
    restamp_home: Option<usize>,
) -> *mut u8 {
    let take = cap.min(BATCH_MAX);
    let mut batch = [std::ptr::null_mut::<u8>(); BATCH_MAX];
    let mut adopted = 0usize;
    let mut total = 0usize;
    let mut tail = chain;
    let mut rest_head: *mut u8 = std::ptr::null_mut();
    let mut seg = chain;
    while !seg.is_null() {
        let (seg_tail, count) = seg_read(seg);
        total += count;
        tail = seg_tail;
        if adopted < take {
            // Adopt this batch's prefix block by block (these blocks are
            // about to be served, so touching them is useful prefetch).
            let mut block = seg;
            let mut left = count;
            while left > 0 && adopted < take {
                if let Some(home) = restamp_home {
                    restamp(block, home);
                }
                batch[adopted] = block;
                adopted += 1;
                block = unsafe { *(block as *mut *mut u8) };
                left -= 1;
            }
            if left > 0 {
                rest_head = block;
            }
        } else if rest_head.is_null() {
            rest_head = seg;
        }
        // The next batch head, if any, is linked from this batch's tail.
        seg = unsafe { *(seg_tail as *mut *mut u8) };
    }
    let first = link_batch(cache, class, &mut batch[..adopted]);
    if !rest_head.is_null() {
        debug_assert!(total > adopted);
        source.free.push_chain(rest_head, tail);
        source.free_len.fetch_add(total - adopted, Ordering::Relaxed);
    }
    source.remote_drained.fetch_add(total as u64, Ordering::Relaxed);
    first
}

/// Carve a slab for the cache's home shard: first block served, up to
/// `cap - 1` into the local list, the rest to the central stack.
fn carve(cache: &mut ThreadCache, class: usize) -> *mut u8 {
    if crate::fault::fail_slab_carve() {
        return fallback_alloc(class);
    }
    owner_bump(&cache.slabs);
    let home = cache.home;
    let cap = mag_cap(class) as usize;
    let Some(base) = carve_slab(class, home) else { return std::ptr::null_mut() };
    let bytes = class_bytes(class);
    let nblocks = (SLAB_BYTES - HEADER_BYTES) / bytes;
    let block_at = |i: usize| unsafe { base.add(HEADER_BYTES + i * bytes) };
    let keep = (cap - 1).min(nblocks - 1);
    let lc = &mut cache.classes[class];
    for i in 1..=keep {
        let b = block_at(i);
        unsafe { *(b as *mut *mut u8) = lc.head };
        lc.head = b;
    }
    owner_add32(&lc.count, keep as u32);
    if keep + 1 < nblocks {
        // Chain the remainder in place and donate it central.
        let first_rest = block_at(keep + 1);
        let mut prev = first_rest;
        for i in keep + 2..nblocks {
            let b = block_at(i);
            unsafe { *(prev as *mut *mut u8) = b };
            prev = b;
        }
        let shard = &CLASSES[class].shards[home];
        shard.free.push_chain(first_rest, prev);
        shard.free_len.fetch_add(nblocks - keep - 1, Ordering::Relaxed);
    }
    block_at(0)
}

/// Cache-less carve: everything beyond the served block goes central.
fn carve_shared(class: usize, home: usize) -> *mut u8 {
    if crate::fault::fail_slab_carve() {
        return fallback_alloc(class);
    }
    FOLDED.slabs_carved.fetch_add(1, Ordering::Relaxed);
    let Some(base) = carve_slab(class, home) else { return std::ptr::null_mut() };
    let bytes = class_bytes(class);
    let nblocks = (SLAB_BYTES - HEADER_BYTES) / bytes;
    let block_at = |i: usize| unsafe { base.add(HEADER_BYTES + i * bytes) };
    if nblocks > 1 {
        let first_rest = block_at(1);
        let mut prev = first_rest;
        for i in 2..nblocks {
            let b = block_at(i);
            unsafe { *(prev as *mut *mut u8) = b };
            prev = b;
        }
        let shard = &CLASSES[class].shards[home];
        shard.free.push_chain(first_rest, prev);
        shard.free_len.fetch_add(nblocks - 1, Ordering::Relaxed);
    }
    block_at(0)
}

/// Allocate and stamp one slab: a quarantined retired slab when one is
/// available (its retiring pass has fully completed — pushes happen only
/// after `PASS_DONE` is published), else fresh memory from [`System`].
/// `None` on OOM (propagates as a null from `alloc`, per the
/// `GlobalAlloc` contract).
fn carve_slab(class: usize, home: usize) -> Option<*mut u8> {
    let base = match retired_pop() {
        Some(base) => base,
        None => {
            let layout =
                Layout::from_size_align(SLAB_BYTES, SLAB_BYTES).expect("static slab layout");
            let base = unsafe { System.alloc(layout) };
            if base.is_null() {
                return None;
            }
            base
        }
    };
    let header = base as *mut SlabHeader;
    unsafe {
        (*header).magic = SLAB_MAGIC;
        (*header).class = class as u16;
        (*header).shard = AtomicU16::new(home as u16);
        (*header).sweep_gen = AtomicU32::new(0);
        (*header).free_seen = AtomicU32::new(0);
    }
    // Mapped before any block can be counted: every alloc-count store is
    // sequenced after this (same thread) or chained through the
    // release/acquire hand-offs of the free stacks (other threads), so a
    // collector that reads counts first and this array last can never see
    // live bytes exceed mapped bytes.
    MAPPED_SLABS[class].fetch_add(1, Ordering::Relaxed);
    Some(base)
}

/// Layout of a fault-fallback chunk for `class`: one block behind a
/// slab-aligned header, so `dealloc`'s address-mask header recovery works
/// on it unchanged.
fn fallback_layout(class: usize) -> Layout {
    Layout::from_size_align(HEADER_BYTES + class_bytes(class), SLAB_BYTES)
        .expect("static fallback layout")
}

/// Injected-carve fallback: serve the request from a [`System`] chunk
/// stamped [`FALLBACK_MAGIC`]. The chunk never enters slab accounting —
/// it is counted on the per-class fallback gauge instead — and never
/// recirculates through caches, central stacks or remote queues: its
/// free goes straight back to [`System`].
#[cold]
fn fallback_alloc(class: usize) -> *mut u8 {
    let base = unsafe { System.alloc(fallback_layout(class)) };
    if base.is_null() {
        return std::ptr::null_mut();
    }
    let header = base as *mut SlabHeader;
    unsafe {
        (*header).magic = FALLBACK_MAGIC;
        (*header).class = class as u16;
        (*header).shard = AtomicU16::new(0);
        (*header).sweep_gen = AtomicU32::new(0);
        (*header).free_seen = AtomicU32::new(0);
    }
    FALLBACK_ALLOCS[class].fetch_add(1, Ordering::Release);
    unsafe { base.add(HEADER_BYTES) }
}

/// Whether `ptr` is a fallback chunk's block (one header load — the same
/// line the free path reads for shard routing anyway). Only ever called
/// under `cfg!(feature = "fault-inject")`; without faults no chunk exists.
#[inline]
fn is_fallback(ptr: *mut u8) -> bool {
    let header = ((ptr as usize) & !SLAB_MASK) as *const SlabHeader;
    unsafe { (*header).magic == FALLBACK_MAGIC }
}

#[cold]
fn fallback_free(ptr: *mut u8, class: usize) {
    let base = ((ptr as usize) & !SLAB_MASK) as *mut u8;
    FALLBACK_FREES[class].fetch_add(1, Ordering::Release);
    unsafe { System.dealloc(base, fallback_layout(class)) };
}

/// The owning shard stamped in `ptr`'s slab header. One load in release
/// builds (the integrity debug-asserts compile out); the header line is
/// shared by every block in the slab, so it is hot on real free bursts.
#[inline]
fn shard_of(ptr: *mut u8, class: usize) -> usize {
    let header = ((ptr as usize) & !SLAB_MASK) as *const SlabHeader;
    unsafe {
        debug_assert_eq!((*header).magic, SLAB_MAGIC, "classed free of a non-slab pointer");
        debug_assert_eq!((*header).class as usize, class, "freed with a different class layout");
        (*header).shard.load(Ordering::Relaxed) as usize
    }
}

/// Classed deallocation: one header load decides home vs foreign. Home
/// blocks take a plain local push; foreign blocks file into the owner's
/// bucket and ride a batched `push_chain` every [`REMOTE_BATCH`] frees.
/// Only a cache-less thread pays a per-block remote CAS.
#[inline]
fn dealloc_class(ptr: *mut u8, class: usize) {
    // Fault builds only: route fallback chunks straight back to System
    // before they can touch the slab ledger (compiled out otherwise).
    if cfg!(feature = "fault-inject") && is_fallback(ptr) {
        return fallback_free(ptr, class);
    }
    let cache = CACHE.get();
    if !cache.is_null() && cache != DEAD {
        let cache = unsafe { &mut *cache };
        let shard = shard_of(ptr, class);
        owner_bump(&cache.classes[class].frees);
        if shard == cache.home {
            let lc = &mut cache.classes[class];
            unsafe { *(ptr as *mut *mut u8) = lc.head };
            lc.head = ptr;
            let count = lc.count.load(Ordering::Relaxed) + 1;
            lc.count.store(count, Ordering::Relaxed);
            if count > mag_cap(class) {
                flush_surplus(cache, class);
            }
        } else {
            bucket_push(cache, class, shard, ptr);
        }
        return;
    }
    // No cache (never allocated) or DEAD (teardown done): the owner's
    // remote queue is exactly the right mailbox — drained by whoever
    // refills there next.
    FOLDED_CLASS[class].frees.fetch_add(1, Ordering::Release);
    remote_push(class, shard_of(ptr, class), ptr);
}

#[inline]
fn remote_push(class: usize, shard_idx: usize, ptr: *mut u8) {
    let shard = &CLASSES[class].shards[shard_idx];
    seg_stamp(ptr, ptr, 1);
    shard.remote.push(ptr);
    shard.remote_pushes.fetch_add(1, Ordering::Relaxed);
}

/// File a foreign-stamped block into its owner's bucket; ship the bucket
/// as one chain when it reaches the batch size.
#[inline]
fn bucket_push(cache: &mut ThreadCache, class: usize, shard: usize, ptr: *mut u8) {
    let b = &mut cache.foreign[class][shard];
    unsafe { *(ptr as *mut *mut u8) = b.head };
    if b.head.is_null() {
        b.tail = ptr;
    }
    b.head = ptr;
    b.count += 1;
    if b.count >= REMOTE_BATCH_RT.load(Ordering::Relaxed) {
        flush_bucket(class, shard, b);
    }
}

/// Ship a non-empty bucket to its owner's remote queue: one CAS for the
/// whole chain (`push_chain` rewrites the tail link, so the chain needs
/// no terminator), counted per block on the remote ledger.
#[cold]
fn flush_bucket(class: usize, shard_idx: usize, b: &mut ForeignBucket) {
    let shard = &CLASSES[class].shards[shard_idx];
    seg_stamp(b.head, b.tail, b.count);
    shard.remote.push_chain(b.head, b.tail);
    shard.remote_pushes.fetch_add(b.count as u64, Ordering::Relaxed);
    b.head = std::ptr::null_mut();
    b.tail = std::ptr::null_mut();
    b.count = 0;
}

/// Detach half the local list and donate it to the *home* central stack,
/// stamps unseen: the detach walk touches just-freed (hot) links and the
/// donation is one `push_chain`. Stolen blocks flushed here carry a stale
/// stamp until their next trip through `dealloc` re-buckets them.
#[cold]
fn flush_surplus(cache: &mut ThreadCache, class: usize) {
    // A pending reclaim epoch empties the whole cache — nothing left to
    // halve, and the early return keeps the walk below off a null head.
    if sync_flush_epoch(cache) {
        return;
    }
    owner_add32(&cache.class_flushes[class], 1);
    let lc = &mut cache.classes[class];
    let count = lc.count.load(Ordering::Relaxed);
    let flush = (count / 2).max(1);
    let head = lc.head;
    let mut tail = head;
    for _ in 1..flush {
        tail = unsafe { *(tail as *mut *mut u8) };
    }
    lc.head = unsafe { *(tail as *mut *mut u8) };
    lc.count.store(count - flush, Ordering::Relaxed);
    let shard = &CLASSES[class].shards[cache.home];
    shard.free.push_chain(head, tail);
    shard.free_len.fetch_add(flush as usize, Ordering::Relaxed);
}

/// Empty every local list (to the home central stack) and every foreign
/// bucket (to its owner's remote queue). Shared by the exit guard and
/// [`flush_thread_cache`].
fn flush_all(cache: &mut ThreadCache) {
    let home = cache.home;
    let ThreadCache { classes, foreign, .. } = cache;
    for (class, (lc, buckets)) in classes.iter_mut().zip(foreign.iter_mut()).enumerate() {
        if !lc.head.is_null() {
            let (n, tail) = chain_measure(lc.head);
            debug_assert_eq!(
                n,
                lc.count.load(Ordering::Relaxed) as usize,
                "local list count drifted"
            );
            let shard = &CLASSES[class].shards[home];
            shard.free.push_chain(lc.head, tail);
            shard.free_len.fetch_add(n, Ordering::Relaxed);
            lc.head = std::ptr::null_mut();
            lc.count.store(0, Ordering::Relaxed);
        }
        if !lc.chain.is_null() {
            // A lazily-served adopted chain: its count and tail were
            // tracked at adoption, so returning it central needs no walk.
            let shard = &CLASSES[class].shards[home];
            shard.free.push_chain(lc.chain, lc.chain_tail);
            shard
                .free_len
                .fetch_add(lc.chain_left.load(Ordering::Relaxed) as usize, Ordering::Relaxed);
            lc.chain = std::ptr::null_mut();
            lc.chain_tail = std::ptr::null_mut();
            lc.chain_left.store(0, Ordering::Relaxed);
        }
        for (s, b) in buckets.iter_mut().enumerate() {
            if !b.head.is_null() {
                flush_bucket(class, s, b);
            }
        }
    }
}

/// Raw entry points: the same block machinery without going through a
/// `#[global_allocator]` installation. `mem-api`'s `global` backend and
/// the bench envelopes call these directly, so the front-end is measurable
/// even in feature-off builds.
pub fn raw_alloc(layout: Layout) -> *mut u8 {
    match class_for(layout.size(), layout.align()) {
        Some(class) => alloc_class(class),
        None => {
            FOLDED.passthrough_allocs.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
    }
}

/// Free a block obtained from [`raw_alloc`] with the same layout.
///
/// # Safety
/// `ptr` must come from [`raw_alloc`] (or the installed [`GlobalPool`])
/// with exactly this `layout`, and must not be freed twice.
pub unsafe fn raw_dealloc(ptr: *mut u8, layout: Layout) {
    match class_for(layout.size(), layout.align()) {
        Some(class) => dealloc_class(ptr, class),
        None => {
            FOLDED.passthrough_frees.fetch_add(1, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

/// Pin the calling thread's home shard (creating its cache if needed).
/// Test/bench hook: lets a harness place producers and consumers on
/// disjoint shards so every cross-thread free provably rides the remote
/// queue. Returns `false` if the thread is past TLS teardown.
pub fn pin_home_shard(shard: usize) -> bool {
    assert!(shard < CLASS_SHARDS, "shard {shard} out of range");
    let mut cache = CACHE.get();
    if cache.is_null() {
        cache = init_cache();
    }
    if cache == DEAD {
        return false;
    }
    // Keep the occupancy ledger honest: the pin overrides whatever slot
    // `init_cache` claimed.
    let old = unsafe { (*cache).home };
    if old != shard {
        SHARD_OCCUPANCY[old].fetch_sub(1, Ordering::Relaxed);
        SHARD_OCCUPANCY[shard].fetch_add(1, Ordering::Relaxed);
        unsafe { (*cache).home = shard };
    }
    true
}

/// Flush the calling thread's cached blocks — local lists to the home
/// central stack, foreign buckets to their owners' remote queues (what
/// the exit guard would do, minus the counter fold). Test/bench hook for
/// reasoning about central population at quiescence.
pub fn flush_thread_cache() {
    let cache = CACHE.get();
    if cache.is_null() || cache == DEAD {
        return;
    }
    let cache = unsafe { &mut *cache };
    flush_all(cache);
}

/// A point-in-time ledger of the front-end. Exact at quiescence for the
/// folded side plus the *calling thread's* live cache; other live threads'
/// plain-field counters are invisible until they exit (the `MagCells`
/// publication trade-off, inherited deliberately).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalAllocStats {
    /// Classed allocations / frees (passthroughs excluded).
    pub class_allocs: u64,
    pub class_frees: u64,
    /// Allocations served by a thread-cache list hit.
    pub cache_hits: u64,
    /// Thread-cache refills (any level: remote, central, carve).
    pub class_refills: u64,
    /// Blocks pushed onto remote-free queues (cross-thread frees).
    pub remote_frees: u64,
    /// Blocks owners drained back out of remote queues.
    pub remote_drained: u64,
    /// Blocks currently sitting in remote queues.
    pub remote_pending: u64,
    /// 64 KiB slab carves (fresh maps plus quarantine recarves).
    pub slabs_carved: u64,
    /// Bytes currently mapped in slabs (carves minus retirements — no
    /// longer process-lifetime; see [`sweep_and_retire`]).
    pub slab_bytes: u64,
    /// Fully-idle slabs retired by reclaim passes, and the bytes their
    /// pages returned to the OS (cumulative).
    pub reclaimed_slabs: u64,
    pub reclaimed_bytes: u64,
    /// Retired slabs pulled back out of quarantine by later carves.
    pub recarved_slabs: u64,
    /// Requests that bypassed the classes (too big / over-aligned).
    pub passthrough_allocs: u64,
    pub passthrough_frees: u64,
    /// Fault-injected carve fallbacks: classed requests served from
    /// System chunks outside slab accounting (`fault-inject` builds with
    /// an armed schedule only; always zero otherwise).
    pub fallback_allocs: u64,
    pub fallback_frees: u64,
    /// Bytes outstanding in fallback chunks (block payload; headers and
    /// alignment slack excluded).
    pub fallback_bytes: u64,
}

/// Snapshot the ledger. Unlike the original fold-on-exit-only snapshot,
/// this reads *every* live cache through the registry, so it is exact at
/// quiescence and a bounded-skew estimate mid-run.
pub fn stats() -> GlobalAllocStats {
    let mut s = GlobalAllocStats {
        cache_hits: FOLDED.cache_hits.load(Ordering::Relaxed),
        class_refills: FOLDED.class_refills.load(Ordering::Relaxed),
        slabs_carved: FOLDED.slabs_carved.load(Ordering::Relaxed),
        passthrough_allocs: FOLDED.passthrough_allocs.load(Ordering::Relaxed),
        passthrough_frees: FOLDED.passthrough_frees.load(Ordering::Relaxed),
        ..GlobalAllocStats::default()
    };
    for fold in &FOLDED_CLASS {
        s.class_allocs += fold.allocs.load(Ordering::Acquire);
        s.class_frees += fold.frees.load(Ordering::Acquire);
    }
    {
        let _g = REGISTRY.lock();
        let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
        while !cur.is_null() {
            let cache = unsafe { &*cur };
            let mut allocs = 0u64;
            for lc in &cache.classes {
                allocs += lc.allocs.load(Ordering::Acquire);
                s.class_frees += lc.frees.load(Ordering::Acquire);
            }
            let refills = cache.refills.load(Ordering::Relaxed);
            s.class_allocs += allocs;
            s.cache_hits += allocs.saturating_sub(refills);
            s.class_refills += refills;
            s.slabs_carved += cache.slabs.load(Ordering::Relaxed);
            cur = cache.next;
        }
    }
    for (class, (fa, ff)) in FALLBACK_ALLOCS.iter().zip(FALLBACK_FREES.iter()).enumerate() {
        let fa = fa.load(Ordering::Acquire);
        let ff = ff.load(Ordering::Acquire);
        s.fallback_allocs += fa;
        s.fallback_frees += ff;
        s.fallback_bytes += fa.saturating_sub(ff) * class_bytes(class) as u64;
    }
    for class in &CLASSES {
        for shard in &class.shards {
            let pushes = shard.remote_pushes.load(Ordering::Relaxed);
            let drained = shard.remote_drained.load(Ordering::Relaxed);
            s.remote_frees += pushes;
            s.remote_drained += drained;
            // Relaxed reads can be mutually skewed mid-run; clamp rather
            // than underflow (exact at quiescence either way).
            s.remote_pending += pushes.saturating_sub(drained);
        }
    }
    s.slab_bytes =
        MAPPED_SLABS.iter().map(|m| m.load(Ordering::Relaxed)).sum::<u64>() * SLAB_BYTES as u64;
    let (reclaimed_slabs, reclaimed_bytes, recarved, _) = reclaim_totals();
    s.reclaimed_slabs = reclaimed_slabs;
    s.reclaimed_bytes = reclaimed_bytes;
    s.recarved_slabs = recarved;
    s
}

/// A snapshot of the shard-occupancy ledger (live caches homed per
/// shard). Test hook: lets a harness verify that pinned and respawned
/// thread generations never leak a phantom occupant.
pub fn shard_occupancy_snapshot() -> [u32; CLASS_SHARDS] {
    let mut out = [0u32; CLASS_SHARDS];
    for (slot, occ) in SHARD_OCCUPANCY.iter().zip(out.iter_mut()) {
        *occ = slot.load(Ordering::Relaxed);
    }
    out
}

/// One class's cumulative controller signal: classed allocations, cold
/// refills, and surplus flushes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassChurn {
    pub allocs: u64,
    pub refills: u64,
    pub flushes: u64,
}

/// Snapshot the per-class churn counters the adaptive controller steers
/// by: live caches summed under the registry lock plus the folded
/// remainders of exited threads. Exact at quiescence, bounded-skew
/// mid-run (owner-only counters, same publication rules as [`stats`]).
pub fn class_churn() -> [ClassChurn; NUM_CLASSES] {
    let mut out = [ClassChurn::default(); NUM_CLASSES];
    for (class, slot) in out.iter_mut().enumerate() {
        slot.allocs = FOLDED_CLASS[class].allocs.load(Ordering::Acquire);
        slot.refills = FOLDED_CHURN[class].refills.load(Ordering::Relaxed);
        slot.flushes = FOLDED_CHURN[class].flushes.load(Ordering::Relaxed);
    }
    let _g = REGISTRY.lock();
    let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
    while !cur.is_null() {
        let cache = unsafe { &*cur };
        for (class, slot) in out.iter_mut().enumerate() {
            slot.allocs += cache.classes[class].allocs.load(Ordering::Acquire);
            slot.refills += cache.class_refills[class].load(Ordering::Relaxed) as u64;
            slot.flushes += cache.class_flushes[class].load(Ordering::Relaxed) as u64;
        }
        cur = cache.next;
    }
    out
}

/// Raw per-class gauge counters, collected by [`collect_raw_gauges`].
/// Block counts, not bytes — [`crate::heap_profile`] scales them.
pub(crate) struct RawGauges {
    pub allocs: [u64; NUM_CLASSES],
    pub frees: [u64; NUM_CLASSES],
    /// Blocks parked in thread-cache magazines (local lists + adopted
    /// chains), summed over live caches.
    pub cache_parked: [u64; NUM_CLASSES],
    /// Blocks parked on central free stacks, summed over shards.
    pub central_parked: [u64; NUM_CLASSES],
    /// Blocks pending on remote-free queues, summed over shards.
    pub remote_pending: [u64; NUM_CLASSES],
    pub mapped_slabs: [u64; NUM_CLASSES],
    pub peak_live_bytes: [u64; NUM_CLASSES],
    /// Fault-fallback blocks outstanding (allocs - frees, clamped).
    pub fallback_blocks: [u64; NUM_CLASSES],
}

/// The two-pass gauge fold (DESIGN.md §9). Read order is the invariant:
///
/// 1. every alloc counter (folded, then each live cache, `Acquire`),
/// 2. every free counter (strictly after all allocs — frees observed
///    beyond pass 1's allocs only *lower* the live estimate),
/// 3. the mapped-slab counts last (monotone; carves between passes only
///    raise the bound).
///
/// So `live = allocs - frees` (clamped at zero) can under- but never
/// over-estimate against the mapped bound: `live_bytes <= mapped_bytes`
/// holds for every snapshot, and both are exact at quiescence. The
/// registry hold spans both counter passes, which also blocks teardown
/// folds from moving counters between the passes.
///
/// The whole fold runs under [`RETIRE_GAUGE`]: mapped counts are only
/// monotone *between* retire phases, so a collection must never
/// interleave one — a slab retired after pass 2 read its (already
/// freed) blocks' counters but before the mapped read would otherwise
/// fake `live > mapped`.
pub(crate) fn collect_raw_gauges() -> RawGauges {
    let mut g = RawGauges {
        allocs: [0; NUM_CLASSES],
        frees: [0; NUM_CLASSES],
        cache_parked: [0; NUM_CLASSES],
        central_parked: [0; NUM_CLASSES],
        remote_pending: [0; NUM_CLASSES],
        mapped_slabs: [0; NUM_CLASSES],
        peak_live_bytes: [0; NUM_CLASSES],
        fallback_blocks: [0; NUM_CLASSES],
    };
    let mut folded_allocs = [0u64; NUM_CLASSES];
    let mut folded_frees = [0u64; NUM_CLASSES];
    let mut thread_hw = [0u64; NUM_CLASSES];
    let _retire_hold = RETIRE_GAUGE.lock();
    {
        let _hold = REGISTRY.lock();
        // Pass 1: allocations (plus the order-insensitive parked gauges
        // and the per-thread high-water marks).
        for (class, fold) in FOLDED_CLASS.iter().enumerate() {
            folded_allocs[class] = fold.allocs.load(Ordering::Acquire);
            g.allocs[class] = folded_allocs[class];
        }
        let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
        while !cur.is_null() {
            let cache = unsafe { &*cur };
            for (class, lc) in cache.classes.iter().enumerate() {
                g.allocs[class] += lc.allocs.load(Ordering::Acquire);
                g.cache_parked[class] += lc.count.load(Ordering::Relaxed) as u64
                    + lc.chain_left.load(Ordering::Relaxed) as u64;
                thread_hw[class] += lc.peak_net.load(Ordering::Relaxed);
            }
            cur = cache.next;
        }
        // Pass 2: frees, strictly after every alloc counter.
        for (class, fold) in FOLDED_CLASS.iter().enumerate() {
            folded_frees[class] = fold.frees.load(Ordering::Acquire);
            g.frees[class] = folded_frees[class];
        }
        let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
        while !cur.is_null() {
            let cache = unsafe { &*cur };
            for (class, lc) in cache.classes.iter().enumerate() {
                g.frees[class] += lc.frees.load(Ordering::Acquire);
            }
            cur = cache.next;
        }
    }
    for (class, state) in CLASSES.iter().enumerate() {
        for shard in &state.shards {
            g.central_parked[class] += shard.free_len.load(Ordering::Relaxed) as u64;
            let pushes = shard.remote_pushes.load(Ordering::Relaxed);
            let drained = shard.remote_drained.load(Ordering::Relaxed);
            g.remote_pending[class] += pushes.saturating_sub(drained);
        }
        g.fallback_blocks[class] = FALLBACK_ALLOCS[class]
            .load(Ordering::Acquire)
            .saturating_sub(FALLBACK_FREES[class].load(Ordering::Acquire));
    }
    // Mapped last (see above), then fold the peak watermark: the live
    // estimate at this instant, and the per-thread high-water sum (folded
    // net of exited threads + each live thread's refill-time peak),
    // clamped to mapped so the non-simultaneous sum stays below the
    // historical mapped ceiling.
    for class in 0..NUM_CLASSES {
        g.mapped_slabs[class] = MAPPED_SLABS[class].load(Ordering::Relaxed);
        let mapped_bytes = g.mapped_slabs[class] * SLAB_BYTES as u64;
        let live_bytes = g.allocs[class].saturating_sub(g.frees[class]) * class_bytes(class) as u64;
        let folded_net = folded_allocs[class].saturating_sub(folded_frees[class]);
        let hw_bytes =
            ((folded_net + thread_hw[class]) * class_bytes(class) as u64).min(mapped_bytes);
        PEAK_LIVE_BYTES[class].fetch_max(live_bytes.max(hw_bytes), Ordering::AcqRel);
        g.peak_live_bytes[class] = PEAK_LIVE_BYTES[class].load(Ordering::Relaxed);
    }
    g
}

/// Add every live cache's sample table (and per-thread totals) into the
/// caller's accumulators — the live half of the profiler's aggregates;
/// [`crate::heap_profile`] owns the folded half.
pub(crate) fn collect_live_samples(
    sites: &mut [[u64; HEAP_PROFILE_TAGS]; NUM_CLASSES],
    threads: &mut [u64; HEAP_PROFILE_THREAD_SLOTS],
) {
    let _hold = REGISTRY.lock();
    let mut cur = REGISTRY_HEAD.load(Ordering::Relaxed) as *const ThreadCache;
    while !cur.is_null() {
        let cache = unsafe { &*cur };
        for (class, row) in cache.samples.iter().enumerate() {
            for (tag, cell) in row.iter().enumerate() {
                sites[class][tag] += cell.load(Ordering::Acquire) as u64;
            }
        }
        threads[cache.ordinal as usize % HEAP_PROFILE_THREAD_SLOTS] +=
            cache.sample_total.load(Ordering::Acquire);
        cur = cache.next;
    }
}

/// Emit the aggregate `remote_free` / `class_refill` counters as telemetry
/// events. Hot allocator paths never touch the telemetry ring (its lazy
/// ring registration allocates, which would recurse through the installed
/// allocator); callers invoke this from safe, non-allocator context — bench
/// bins after a run, reports before rendering. No-op without `telemetry`.
pub fn publish_telemetry() {
    let s = stats();
    crate::obs::pool_event!(RemoteFree, s.remote_frees);
    crate::obs::pool_event!(ClassRefill, s.class_refills);
    crate::obs::pool_event!(FallbackAlloc, s.fallback_allocs);
}

/// Whether this build installs [`GlobalPool`] as `#[global_allocator]`.
pub const fn installed() -> bool {
    cfg!(feature = "global-alloc")
}

/// The size-class front-end as a [`GlobalAlloc`]. A unit struct: all state
/// is in statics and TLS, so the installed instance and ad-hoc instances
/// share one runtime.
pub struct GlobalPool;

unsafe impl GlobalAlloc for GlobalPool {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        raw_alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { raw_dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let old_class = class_for(layout.size(), layout.align());
        let new_class = class_for(new_size, layout.align());
        match (old_class, new_class) {
            // Same block still fits (or shrinks within its class): free.
            (Some(a), Some(b)) if a == b => ptr,
            // Passthrough to passthrough: let the system resize in place.
            (None, None) => unsafe { System.realloc(ptr, layout, new_size) },
            _ => {
                let new_layout =
                    unsafe { Layout::from_size_align_unchecked(new_size, layout.align()) };
                let new_ptr = raw_alloc(new_layout);
                if !new_ptr.is_null() {
                    unsafe {
                        std::ptr::copy_nonoverlapping(ptr, new_ptr, layout.size().min(new_size));
                        raw_dealloc(ptr, layout);
                    }
                }
                new_ptr
            }
        }
    }
}

/// With the `global-alloc` feature on, every crate linking `pools` — the
/// bench bins, the workload executor, the whole test workspace — routes
/// its heap through the front-end.
#[cfg(feature = "global-alloc")]
#[global_allocator]
static GLOBAL_POOL: GlobalPool = GlobalPool;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::{CLASS_ALIGN, MAX_CLASS_BYTES};

    fn layout(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    #[test]
    fn classed_roundtrip_reuses_blocks() {
        let l = layout(48, 8);
        let a = raw_alloc(l);
        assert!(!a.is_null());
        unsafe {
            std::ptr::write_bytes(a, 0xAB, 48);
            raw_dealloc(a, l);
        }
        // LIFO thread cache: the very next same-class alloc is the block.
        // Only asserted feature-off: with the front-end installed the test
        // harness itself allocates in this class, so the list head can
        // legitimately move (or flush) between the two calls.
        let b = raw_alloc(l);
        if !installed() {
            assert_eq!(a, b, "thread-cache LIFO must hand the block back");
        }
        assert!(!b.is_null());
        unsafe { raw_dealloc(b, l) };
    }

    #[test]
    fn blocks_are_class_aligned_and_slab_stamped() {
        for &size in &[16usize, 64, 1024, 4096] {
            let l = layout(size, 16);
            let p = raw_alloc(l);
            assert!(!p.is_null());
            assert_eq!(p as usize % CLASS_ALIGN, 0, "block under-aligned for size {size}");
            let header = ((p as usize) & !SLAB_MASK) as *const SlabHeader;
            unsafe {
                assert_eq!((*header).magic, SLAB_MAGIC);
                assert!(class_bytes((*header).class as usize) >= size);
            }
            unsafe { raw_dealloc(p, l) };
        }
    }

    #[test]
    fn pinned_thread_generations_conserve_the_shard_ledger() {
        // ISSUE 10 satellite: `pin_home_shard` overrides the slot
        // `claim_home_shard` just claimed; if the pin (or a re-pin, or
        // the teardown of a pinned cache) failed to decrement the slot
        // it moved off, every respawned pinned generation would leak a
        // phantom occupant and steer all future claims away from it.
        const GENERATIONS: usize = 64;
        let before: u32 = shard_occupancy_snapshot().iter().sum();
        for generation in 0..GENERATIONS {
            std::thread::spawn(move || {
                assert!(pin_home_shard(generation % CLASS_SHARDS));
                let l = Layout::from_size_align(64, 8).unwrap();
                let p = raw_alloc(l);
                assert!(!p.is_null());
                unsafe { raw_dealloc(p, l) };
                // Re-pin to another shard: the ledger must move, not add.
                assert!(pin_home_shard((generation + 3) % CLASS_SHARDS));
            })
            .join()
            .unwrap();
        }
        let after: u32 = shard_occupancy_snapshot().iter().sum();
        // Sibling tests' threads drift the ledger by a handful; a leak
        // drifts it by a phantom per generation (two per with the re-pin).
        let drift = after.abs_diff(before);
        assert!(
            drift < GENERATIONS as u32 / 2,
            "ledger drifted {drift} across {GENERATIONS} pinned generations"
        );
        for (i, occ) in shard_occupancy_snapshot().iter().enumerate() {
            assert!(*occ < 10_000, "shard {i} ledger wrapped: {occ}");
        }
    }

    #[test]
    fn passthrough_sizes_do_not_get_slab_headers() {
        let l = layout(MAX_CLASS_BYTES + 1, 8);
        let before = stats();
        let p = raw_alloc(l);
        assert!(!p.is_null());
        unsafe { raw_dealloc(p, l) };
        let after = stats();
        // >=: sibling tests (and the installed harness) also pass through.
        assert!(after.passthrough_allocs - before.passthrough_allocs >= 1);
        assert!(after.passthrough_frees - before.passthrough_frees >= 1);
    }

    #[test]
    fn over_aligned_requests_pass_through() {
        let l = layout(64, 64);
        let before = stats();
        let p = raw_alloc(l);
        assert!(!p.is_null());
        assert_eq!(p as usize % 64, 0);
        unsafe { raw_dealloc(p, l) };
        let after = stats();
        assert!(after.passthrough_allocs - before.passthrough_allocs >= 1);
    }

    #[test]
    fn ledger_balances_over_a_burst() {
        let before = stats();
        let l = layout(96, 8);
        let mut live = Vec::new();
        for _ in 0..1000 {
            live.push(raw_alloc(l) as usize);
        }
        for p in live.drain(..).rev() {
            unsafe { raw_dealloc(p as *mut u8, l) };
        }
        let after = stats();
        // Lower bounds, not equalities: parallel tests in this binary (and,
        // with `global-alloc` on, the harness itself) share the ledger. The
        // *exact* conservation accounting lives in the dedicated
        // `global_alloc_stress` integration binary, which serializes.
        assert!(after.class_allocs - before.class_allocs >= 1000);
        assert!(after.class_frees - before.class_frees >= 1000);
        assert!(after.cache_hits > before.cache_hits, "steady-state must hit the cache");
    }

    #[test]
    fn retirement_round_trip_returns_and_recarves_slabs() {
        // A dedicated thread bursts ~13 slabs of a quiet class, frees
        // everything, and exits (flushing all blocks to shared levels).
        let l = layout(2048, 8);
        let before = stats();
        std::thread::spawn(move || {
            let mut held: Vec<usize> = (0..400).map(|_| raw_alloc(l) as usize).collect();
            assert!(held.iter().all(|&p| p != 0));
            for p in held.drain(..) {
                unsafe { raw_dealloc(p as *mut u8, l) };
            }
        })
        .join()
        .unwrap();
        let out = sweep_and_retire(0);
        assert!(out.retired_slabs >= 1, "a fully-idle burst must retire slabs: {out:?}");
        assert_eq!(out.retired_bytes, out.retired_slabs * SLAB_BYTES as u64);
        assert!(out.swept_blocks >= 400, "the burst's blocks must be in the sweep");
        let after = stats();
        assert!(
            after.reclaimed_slabs >= before.reclaimed_slabs + out.retired_slabs,
            "retirements must reach the stats ledger"
        );
        // Recarve: the next allocation in the class must be able to pull
        // a quarantined slab back and hand out a valid, writable block.
        let p = raw_alloc(l);
        assert!(!p.is_null());
        unsafe {
            std::ptr::write_bytes(p, 0xC3, 2048);
            raw_dealloc(p, l);
        }
    }

    #[test]
    fn realloc_within_a_class_is_identity() {
        let pool = GlobalPool;
        let l = layout(100, 8);
        unsafe {
            let p = pool.alloc(l);
            // 100 and 112 both land in the 112-byte class.
            let q = pool.realloc(p, l, 112);
            assert_eq!(p, q);
            pool.dealloc(q, layout(112, 8));
        }
    }

    #[test]
    fn realloc_across_the_passthrough_boundary_copies() {
        let pool = GlobalPool;
        let l = layout(64, 8);
        unsafe {
            let p = pool.alloc(l);
            std::ptr::write_bytes(p, 0x5A, 64);
            let q = pool.realloc(p, l, MAX_CLASS_BYTES + 64);
            assert!(!q.is_null());
            for i in 0..64 {
                assert_eq!(*q.add(i), 0x5A, "byte {i} lost in class->passthrough realloc");
            }
            pool.dealloc(q, layout(MAX_CLASS_BYTES + 64, 8));
        }
    }
}
