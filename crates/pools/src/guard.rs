//! Debug heap-integrity guard for the pool runtime.
//!
//! Active when either `debug_assertions` or the `fault-inject` feature is
//! on; in a default release build every type here is a zero-sized no-op and
//! every method an empty `#[inline(always)]` body, so the guard adds **no
//! metadata and no instructions** to the fast paths the
//! `BENCH_pools.json` envelopes measure.
//!
//! Two mechanisms:
//!
//! 1. **Slot guards** — slab-carved `PoolBox` slots are laid out as
//!    `[value, canary, generation]` ([`crate::pool_box`]). The canary is a
//!    per-address constant ([`canary_for`]) checked at `fill` and at drop:
//!    a neighbouring overflow or stray write trips it immediately. The
//!    generation word's low bit tracks *live* vs *dead*; dropping a dead
//!    slot (a double release of the same slab slot through any unsafe
//!    path) panics, and the remaining bits count fill generations so a
//!    stale handle can be recognized after the slot was reused.
//! 2. **The ledger** — a [`Ledger`] on each depot counts every object that
//!    enters a cache level (*park*), leaves it for a caller (*unpark*), or
//!    is destroyed while cached (*reclaim*: trims, epoch invalidations,
//!    stale depot nodes). At depot drop, when no live magazines remain,
//!    [`Ledger::reconcile`] checks the books against the physically parked
//!    population and the cap-drop counters from [`crate::stats::PoolStats`]
//!    — exact live-object accounting: any leak or double-handout that
//!    slipped past the stress tests shows up as an imbalance here.

#![cfg_attr(
    not(any(debug_assertions, feature = "fault-inject")),
    allow(unused_variables, dead_code)
)]

#[cfg(any(debug_assertions, feature = "fault-inject"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Base constant the per-slot canary derives from (xored with the slot
/// address, so a block copied over another block still trips the check).
#[cfg(any(debug_assertions, feature = "fault-inject"))]
pub(crate) const CANARY: u64 = 0x5AB5_0157_CA4A_AB1E;

/// Low bit of the generation word: slot currently holds a live value.
#[cfg(any(debug_assertions, feature = "fault-inject"))]
pub(crate) const GEN_LIVE: u64 = 1;

/// The canary value a guard slot at `addr` must carry.
#[cfg(any(debug_assertions, feature = "fault-inject"))]
#[inline]
pub(crate) fn canary_for(addr: usize) -> u64 {
    CANARY ^ addr as u64
}

/// Park/unpark/reclaim books for one depot. See the module docs.
#[cfg(any(debug_assertions, feature = "fault-inject"))]
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    /// Objects released into a cache level (magazine, depot, or shard).
    parks: AtomicU64,
    /// Cached objects handed back out to a caller.
    unparks: AtomicU64,
    /// Cached objects destroyed by trim / epoch invalidation / stale-node
    /// discard (never reached a caller again).
    reclaimed: AtomicU64,
}

#[cfg(any(debug_assertions, feature = "fault-inject"))]
impl Ledger {
    #[inline]
    pub(crate) fn record_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_unpark(&self) {
        self.unparks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_reclaim(&self, n: usize) {
        if n > 0 {
            self.reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Check the books: every park must be accounted for by an unpark, a
    /// reclaim, a cap-drop ([`crate::stats::PoolStats::dropped`]), or an
    /// object still physically parked at drop time. Skipped while a panic
    /// is already unwinding (the books are expected to be torn then).
    pub(crate) fn reconcile(&self, physically_parked: usize, cap_dropped: u64) {
        if std::thread::panicking() {
            return;
        }
        let parks = self.parks.load(Ordering::Relaxed);
        let unparks = self.unparks.load(Ordering::Relaxed);
        let reclaimed = self.reclaimed.load(Ordering::Relaxed);
        let expected = parks
            .checked_sub(unparks)
            .and_then(|v| v.checked_sub(reclaimed))
            .and_then(|v| v.checked_sub(cap_dropped));
        assert_eq!(
            expected,
            Some(physically_parked as u64),
            "pool guard ledger imbalance at depot drop: parks {parks} - unparks {unparks} \
             - reclaimed {reclaimed} - cap drops {cap_dropped} should equal the {physically_parked} \
             objects still parked (double handout or leak in a cache level)",
        );
    }
}

/// Release-build stand-in: zero-sized, every method a no-op that the
/// optimizer deletes along with its call sites' argument computation.
#[cfg(not(any(debug_assertions, feature = "fault-inject")))]
#[derive(Debug, Default)]
pub(crate) struct Ledger;

#[cfg(not(any(debug_assertions, feature = "fault-inject")))]
impl Ledger {
    #[inline(always)]
    pub(crate) fn record_park(&self) {}

    #[inline(always)]
    pub(crate) fn record_unpark(&self) {}

    #[inline(always)]
    pub(crate) fn record_reclaim(&self, _n: usize) {}

    #[inline(always)]
    pub(crate) fn reconcile(&self, _physically_parked: usize, _cap_dropped: u64) {}
}

#[cfg(all(test, any(debug_assertions, feature = "fault-inject")))]
mod tests {
    use super::*;

    #[test]
    fn balanced_books_reconcile() {
        let l = Ledger::default();
        for _ in 0..10 {
            l.record_park();
        }
        for _ in 0..4 {
            l.record_unpark();
        }
        l.record_reclaim(3);
        l.record_reclaim(0); // no-op
        l.reconcile(2, 1); // 10 - 4 - 3 - 1 == 2 parked
    }

    #[test]
    #[should_panic(expected = "ledger imbalance")]
    fn imbalanced_books_panic() {
        let l = Ledger::default();
        l.record_park();
        l.record_park();
        l.reconcile(1, 0); // 2 parks, 1 parked, nothing else: one object lost
    }

    #[test]
    fn canary_differs_per_address() {
        assert_ne!(canary_for(0x1000), canary_for(0x1008));
        assert_eq!(canary_for(0x1000), canary_for(0x1000));
        assert_eq!(GEN_LIVE, 1);
    }
}
