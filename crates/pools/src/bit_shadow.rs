//! The paper's §5.1 space optimization, implemented: "each shadow pointer
//! could be replaced with one bit, which indicates if the original pointer
//! is logically deleted or not. If the original pointer is logically
//! deleted it has the role of the shadow pointer, and if it is not deleted
//! the shadow pointer has no role."
//!
//! The authors did not implement this in their prototype ("would make the
//! pre-processor somewhat more complex"); this module provides the runtime
//! semantics as an alternative to [`crate::shadow::Shadow`], saving one
//! pointer word per field at the cost of a flag check on every access.

/// A field slot where the pointer itself doubles as the shadow, tagged by
/// a logical-deletion bit.
#[derive(Debug)]
pub struct BitShadow<T> {
    slot: Option<Box<T>>,
    /// True when `slot` holds a logically deleted (parked) object.
    dead: bool,
    hits: u64,
    misses: u64,
}

impl<T> Default for BitShadow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BitShadow<T> {
    /// An empty slot.
    pub fn new() -> Self {
        BitShadow { slot: None, dead: false, hits: 0, misses: 0 }
    }

    /// True if a live object is present.
    pub fn is_live(&self) -> bool {
        self.slot.is_some() && !self.dead
    }

    /// True if a logically deleted object is parked.
    pub fn is_parked(&self) -> bool {
        self.slot.is_some() && self.dead
    }

    /// Borrow the live object (`None` when empty **or** logically deleted —
    /// a dead pointer must not be dereferenced).
    pub fn get(&self) -> Option<&T> {
        if self.dead {
            None
        } else {
            self.slot.as_deref()
        }
    }

    /// Mutably borrow the live object.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        if self.dead {
            None
        } else {
            self.slot.as_deref_mut()
        }
    }

    /// Plain assignment of a fresh object; displaces anything parked.
    pub fn set(&mut self, value: Box<T>) {
        self.slot = Some(value);
        self.dead = false;
    }

    /// The rewritten `delete field;`: run the cleanup ("destructor") and
    /// flip the deletion bit — the pointer now *is* the shadow.
    pub fn kill_with(&mut self, cleanup: impl FnOnce(&mut T)) {
        if self.dead {
            return;
        }
        if let Some(obj) = self.slot.as_deref_mut() {
            cleanup(obj);
            self.dead = true;
        }
    }

    /// [`BitShadow::kill_with`] without a cleanup action.
    pub fn kill(&mut self) {
        self.kill_with(|_| {});
    }

    /// The rewritten `field = new T(...)`: revive the parked object
    /// in place (hit) or allocate fresh (miss). Returns `true` on a hit.
    pub fn revive(&mut self, fresh: impl FnOnce() -> T, reinit: impl FnOnce(&mut T)) -> bool {
        match (self.slot.as_deref_mut(), self.dead) {
            (Some(obj), true) => {
                reinit(obj);
                self.dead = false;
                self.hits += 1;
                true
            }
            _ => {
                self.slot = Some(Box::new(fresh()));
                self.dead = false;
                self.misses += 1;
                false
            }
        }
    }

    /// Remove and return the live object.
    pub fn take(&mut self) -> Option<Box<T>> {
        if self.dead {
            None
        } else {
            self.slot.take()
        }
    }

    /// Really free the parked object (trimming).
    pub fn discard_parked(&mut self) {
        if self.dead {
            self.slot = None;
            self.dead = false;
        }
    }

    /// Revivals served by the parked object.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Revivals that allocated fresh.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_payload_is_pointer_plus_bit() {
        use std::mem::size_of;
        // The state a field needs: one pointer + one bit, vs the two
        // pointers of the shadow scheme. Per isolated field, alignment
        // padding hides the saving (both round to two words); the paper's
        // win materializes when many fields' bits pack into one flag word
        // per object. Assert the representation is never *larger*, and
        // that the raw payload is pointer + bool.
        assert!(size_of::<BitShadow<u64>>() <= size_of::<crate::Shadow<u64>>());
        assert_eq!(size_of::<(Option<Box<u64>>, bool)>(), size_of::<usize>() * 2, "pointer + flag");
    }

    #[test]
    fn kill_then_revive_reuses_allocation() {
        let mut s = BitShadow::new();
        // Reserve room for the post-revive push up front: the assertion is
        // about the *shadow* reusing the parked Vec, so the buffer must not
        // be reallocated by growth (which only keeps the pointer on
        // allocators that happen to extend in place).
        let mut v = Vec::with_capacity(4);
        v.extend([1, 2, 3]);
        s.set(Box::new(v));
        let addr = s.get().unwrap().as_ptr();
        s.kill();
        assert!(s.is_parked());
        assert!(s.get().is_none(), "dead pointer must not be readable");
        let hit = s.revive(Vec::new, |v| v.push(4));
        assert!(hit);
        assert_eq!(s.get().unwrap().as_ptr(), addr);
        assert_eq!(s.get().unwrap().as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn revive_from_empty_is_miss() {
        let mut s: BitShadow<u32> = BitShadow::new();
        assert!(!s.revive(|| 9, |_| {}));
        assert_eq!(*s.get().unwrap(), 9);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn double_kill_is_idempotent() {
        let mut s = BitShadow::new();
        s.set(Box::new(1u8));
        let mut cleanups = 0;
        s.kill_with(|_| cleanups += 1);
        s.kill_with(|_| cleanups += 1);
        assert_eq!(cleanups, 1, "the destructor must run once");
        assert!(s.is_parked());
    }

    #[test]
    fn take_respects_deletion_bit() {
        let mut s = BitShadow::new();
        s.set(Box::new(5u32));
        s.kill();
        assert!(s.take().is_none(), "a dead object cannot be taken");
        assert!(s.is_parked(), "parked object survives the failed take");
    }

    #[test]
    fn discard_really_frees() {
        let mut s = BitShadow::new();
        s.set(Box::new(1u32));
        s.kill();
        s.discard_parked();
        assert!(!s.is_parked());
        assert!(!s.revive(|| 2, |_| {}), "nothing to revive after discard");
    }

    #[test]
    fn semantics_match_two_word_shadow() {
        // Drive both implementations through the same script; observable
        // behaviour must be identical.
        let mut bit = BitShadow::new();
        let mut two = crate::Shadow::new();
        bit.set(Box::new(10u64));
        two.set(Box::new(10u64));
        for i in 0..50u64 {
            bit.kill();
            two.kill();
            let hb = bit.revive(|| i, |v| *v = i);
            let ht = two.revive(|| i, |v| *v = i);
            assert_eq!(hb, ht);
            assert_eq!(bit.get().copied(), two.get().copied());
        }
        assert_eq!(bit.hits(), two.hits());
    }
}
