//! Deterministic fault injection for the four-level acquire path
//! (`fault-inject` feature, default off).
//!
//! Faults are decided *statelessly*: each decision hashes
//! `(seed, site, thread ordinal, per-thread per-site counter)` through a
//! SplitMix64 finalizer and compares the result against a per-site
//! threshold. Nothing about the pool's racy runtime state (depot occupancy,
//! shard contention, magazine fill) enters the decision, so the schedule of
//! injected faults on a given thread is a pure function of the seed and
//! that thread's own operation sequence — the property the `fault_matrix`
//! determinism assertion (same seed ⇒ same checksums, same injected-fault
//! counts) rests on.
//!
//! The five sites, one per rung of the degradation ladder plus the flush
//! side:
//!
//! * **fresh-alloc failure** — decided at `acquire` *entry*; the acquire
//!   bypasses every cache level and returns a plain heap `Box` (a
//!   `FallbackAlloc`, counted in [`crate::PoolStats`]). Deciding at entry
//!   rather than at the level-4 miss keeps the fallback count independent
//!   of cross-thread interleaving.
//! * **slab-carve failure** — the level-4 miss skips
//!   [`crate::pool_box::SlabReserve::carve`] and boxes plainly, exercising
//!   the allocation-failure arm of the carve path.
//! * **depot CAS retry** — a successful `pop` of a full magazine is pushed
//!   straight back and re-popped, simulating a lost CAS race (and
//!   exercising the version-tag ABA protection).
//! * **epoch bump mid-swap** — [`crate::magazine`] bumps the trim epoch
//!   between popping a depot node and validating its epoch, the exact
//!   window the trim/swap race argument is about.
//! * **flush delay** — a full magazine skips one park/flush, letting it
//!   exceed its capacity by one before the next release handles it.
//!
//! With the feature disabled this module is an identical-API stub whose
//! predicates are constant `false`, so call sites compile unconditionally
//! and the optimizer removes them from release fast paths.

/// Injection rates for each fault site, in `[0, 1]`, plus the seed the
/// whole schedule derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-decision hash.
    pub seed: u64,
    /// P(fail an acquire outright → heap fallback).
    pub fail_fresh: f64,
    /// P(fail a slab carve → plain box).
    pub fail_carve: f64,
    /// P(force a depot pop to retry).
    pub depot_retry: f64,
    /// P(bump the trim epoch between depot pop and validate).
    pub epoch_bump: f64,
    /// P(delay a full magazine's park/flush by one release).
    pub flush_delay: f64,
}

impl FaultConfig {
    /// All five sites at the same rate.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            fail_fresh: rate,
            fail_carve: rate,
            depot_retry: rate,
            epoch_bump: rate,
            flush_delay: rate,
        }
    }

    /// Everything off (the state [`clear`] restores).
    pub fn off() -> Self {
        Self::uniform(0, 0.0)
    }
}

/// Injected-fault totals since the last [`install`] / [`reset_counts`],
/// indexed like the config fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Acquires failed outright (each one produced a heap fallback).
    pub fail_fresh: u64,
    /// Slab carves failed.
    pub fail_carve: u64,
    /// Depot pops forced to retry.
    pub depot_retry: u64,
    /// Epoch bumps injected mid-swap.
    pub epoch_bump: u64,
    /// Magazine flushes delayed.
    pub flush_delay: u64,
}

impl FaultCounts {
    /// Total injected faults across all sites.
    pub fn total(&self) -> u64 {
        self.fail_fresh + self.fail_carve + self.depot_retry + self.epoch_bump + self.flush_delay
    }
}

#[cfg(feature = "fault-inject")]
mod imp {
    use super::{FaultConfig, FaultCounts};
    use crate::obs::pool_event;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    pub(super) const NUM_SITES: usize = 5;

    /// Per-site salts keep the five decision streams independent even when
    /// their counters run in lockstep.
    const SITE_SALTS: [u64; NUM_SITES] = [
        0x9E37_79B9_7F4A_7C15,
        0xC2B2_AE3D_27D4_EB4F,
        0x1656_67B1_9E37_79F9,
        0xFF51_AFD7_ED55_8CCD,
        0xC4CE_B9FE_1A85_EC53,
    ];

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static THRESHOLDS: [AtomicU64; NUM_SITES] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    static INJECTED: [AtomicU64; NUM_SITES] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    /// Fallback ordinals for threads that never called
    /// [`super::set_thread_ordinal`].
    static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(1 << 32);

    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(u64::MAX) };
        static COUNTERS: [Cell<u64>; NUM_SITES] =
            const { [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)] };
    }

    /// The SplitMix64 output finalizer — a strong 64-bit mix.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn threshold(rate: f64) -> u64 {
        if rate <= 0.0 {
            0
        } else if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        }
    }

    pub(super) fn install(config: FaultConfig) {
        SEED.store(config.seed, Ordering::Relaxed);
        let rates = [
            config.fail_fresh,
            config.fail_carve,
            config.depot_retry,
            config.epoch_bump,
            config.flush_delay,
        ];
        for (slot, rate) in THRESHOLDS.iter().zip(rates) {
            slot.store(threshold(rate), Ordering::Relaxed);
        }
        reset_counts();
        ACTIVE.store(true, Ordering::Release);
    }

    pub(super) fn clear() {
        ACTIVE.store(false, Ordering::Release);
    }

    pub(super) fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    pub(super) fn set_thread_ordinal(ordinal: u64) {
        ORDINAL.with(|o| o.set(ordinal));
        // A new ordinal starts a new deterministic stream: reset the
        // per-site counters so re-used OS threads (and a thread re-running
        // a workload under the same ordinal) replay the same schedule.
        COUNTERS.with(|c| c.iter().for_each(|n| n.set(0)));
    }

    pub(super) fn reset_counts() {
        for n in INJECTED.iter() {
            n.store(0, Ordering::Relaxed);
        }
    }

    pub(super) fn injected_counts() -> FaultCounts {
        let get = |i: usize| INJECTED[i].load(Ordering::Relaxed);
        FaultCounts {
            fail_fresh: get(0),
            fail_carve: get(1),
            depot_retry: get(2),
            epoch_bump: get(3),
            flush_delay: get(4),
        }
    }

    #[cold]
    fn decide_cold(site: usize) -> bool {
        let thr = THRESHOLDS[site].load(Ordering::Relaxed);
        if thr == 0 {
            return false;
        }
        let ordinal = ORDINAL.with(|o| {
            let cur = o.get();
            if cur != u64::MAX {
                return cur;
            }
            let fresh = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            o.set(fresh);
            fresh
        });
        let n = COUNTERS.with(|c| {
            let n = c[site].get();
            c[site].set(n + 1);
            n
        });
        let seed = SEED.load(Ordering::Relaxed);
        let h = mix(seed ^ SITE_SALTS[site] ^ mix(ordinal ^ SITE_SALTS[site]) ^ n);
        if h < thr {
            INJECTED[site].fetch_add(1, Ordering::Relaxed);
            pool_event!(FaultInjected, site);
            true
        } else {
            false
        }
    }

    #[inline]
    pub(super) fn decide(site: usize) -> bool {
        if !ACTIVE.load(Ordering::Relaxed) {
            return false;
        }
        decide_cold(site)
    }
}

#[cfg(feature = "fault-inject")]
mod api {
    use super::imp;
    use super::{FaultConfig, FaultCounts};

    /// Install a fault schedule and activate injection process-wide.
    pub fn install(config: FaultConfig) {
        imp::install(config);
    }

    /// Deactivate injection (the installed rates are kept but dormant).
    pub fn clear() {
        imp::clear();
    }

    /// True when a schedule is installed and active.
    pub fn is_active() -> bool {
        imp::is_active()
    }

    /// Pin the calling thread's ordinal (its identity in the decision
    /// hash) and restart its decision counters. Executors call this once
    /// per worker with the worker's stable index, making the schedule
    /// reproducible across runs regardless of OS thread reuse.
    pub fn set_thread_ordinal(ordinal: u64) {
        imp::set_thread_ordinal(ordinal);
    }

    /// Zero the injected-fault totals ([`install`] does this too).
    pub fn reset_counts() {
        imp::reset_counts();
    }

    /// Injected-fault totals since the last [`install`]/[`reset_counts`].
    pub fn injected_counts() -> FaultCounts {
        imp::injected_counts()
    }

    /// Site 0: fail this acquire outright (heap fallback).
    #[inline]
    pub fn fail_fresh_alloc() -> bool {
        imp::decide(0)
    }

    /// Site 1: fail the pending slab carve.
    #[inline]
    pub fn fail_slab_carve() -> bool {
        imp::decide(1)
    }

    /// Site 2: force the depot pop to retry once.
    #[inline]
    pub fn retry_depot() -> bool {
        imp::decide(2)
    }

    /// Site 3: bump the trim epoch between depot pop and validate.
    #[inline]
    pub fn bump_epoch() -> bool {
        imp::decide(3)
    }

    /// Site 4: delay this full magazine's park/flush by one release.
    #[inline]
    pub fn delay_flush() -> bool {
        imp::decide(4)
    }
}

#[cfg(not(feature = "fault-inject"))]
mod api {
    use super::{FaultConfig, FaultCounts};

    /// No-op without the `fault-inject` feature.
    pub fn install(_config: FaultConfig) {}

    /// No-op without the `fault-inject` feature.
    pub fn clear() {}

    /// Always `false` without the `fault-inject` feature.
    #[inline(always)]
    pub fn is_active() -> bool {
        false
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn set_thread_ordinal(_ordinal: u64) {}

    /// No-op without the `fault-inject` feature.
    pub fn reset_counts() {}

    /// Always zero without the `fault-inject` feature.
    pub fn injected_counts() -> FaultCounts {
        FaultCounts::default()
    }

    /// Constant `false`: the predicate (and its branch) compiles out.
    #[inline(always)]
    pub fn fail_fresh_alloc() -> bool {
        false
    }

    /// Constant `false`: the predicate (and its branch) compiles out.
    #[inline(always)]
    pub fn fail_slab_carve() -> bool {
        false
    }

    /// Constant `false`: the predicate (and its branch) compiles out.
    #[inline(always)]
    pub fn retry_depot() -> bool {
        false
    }

    /// Constant `false`: the predicate (and its branch) compiles out.
    #[inline(always)]
    pub fn bump_epoch() -> bool {
        false
    }

    /// Constant `false`: the predicate (and its branch) compiles out.
    #[inline(always)]
    pub fn delay_flush() -> bool {
        false
    }
}

pub use api::{
    bump_epoch, clear, delay_flush, fail_fresh_alloc, fail_slab_carve, injected_counts, install,
    is_active, reset_counts, retry_depot, set_thread_ordinal,
};

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Fault state is process-global; tests in this module serialize on it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_by_default_and_after_clear() {
        let _g = LOCK.lock().unwrap();
        clear();
        assert!(!is_active());
        for _ in 0..64 {
            assert!(!fail_fresh_alloc());
        }
        install(FaultConfig::uniform(1, 1.0));
        assert!(is_active());
        clear();
        assert!(!fail_fresh_alloc());
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let _g = LOCK.lock().unwrap();
        install(FaultConfig { fail_carve: 0.0, ..FaultConfig::uniform(7, 1.0) });
        set_thread_ordinal(0);
        for _ in 0..32 {
            assert!(fail_fresh_alloc());
            assert!(!fail_slab_carve());
        }
        let counts = injected_counts();
        assert_eq!(counts.fail_fresh, 32);
        assert_eq!(counts.fail_carve, 0);
        assert_eq!(counts.total(), 32);
        clear();
    }

    #[test]
    fn same_seed_same_ordinal_replays_the_same_schedule() {
        let _g = LOCK.lock().unwrap();
        install(FaultConfig::uniform(42, 0.25));
        set_thread_ordinal(3);
        let first: Vec<bool> = (0..256).map(|_| fail_fresh_alloc()).collect();
        set_thread_ordinal(3); // restart the stream
        let second: Vec<bool> = (0..256).map(|_| fail_fresh_alloc()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&b| b), "rate 0.25 over 256 draws must fire");
        assert!(!first.iter().all(|&b| b));
        // A different ordinal yields a different (deterministic) schedule.
        set_thread_ordinal(4);
        let other: Vec<bool> = (0..256).map(|_| fail_fresh_alloc()).collect();
        assert_ne!(first, other);
        clear();
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let _g = LOCK.lock().unwrap();
        install(FaultConfig::uniform(99, 0.1));
        set_thread_ordinal(0);
        let n = 20_000;
        let fired = (0..n).filter(|_| fail_fresh_alloc()).count();
        let rate = fired as f64 / n as f64;
        assert!((0.05..0.15).contains(&rate), "empirical rate {rate} far from 0.1");
        clear();
    }
}
