//! Pool sharding: the ptmalloc-derived strategy Amplify uses to "spread the
//! threads over a number of pools to avoid lock contention on a
//! multiprocessor" (§3.2).
//!
//! Each thread remembers a preferred shard per pool. Operations first
//! `try_lock` the preferred shard; on contention the thread *spins* to the
//! next shard and makes it the new preference — exactly ptmalloc's
//! arena-selection rule, with failed lock attempts as the signal.

use crate::limits::PoolConfig;
use crate::object_pool::ObjectPool;
use crate::stats::StatsSnapshot;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread preferred shard index, keyed by pool instance id.
    static PREFERRED: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

/// A pool split into `n` independently locked shards.
#[derive(Debug)]
pub struct ShardedPool<T> {
    id: u64,
    shards: Vec<ObjectPool<T>>,
}

impl<T> ShardedPool<T> {
    /// Create a pool with `shards` independent free lists (must be ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, PoolConfig::default())
    }

    /// Create a sharded pool with per-shard limits.
    pub fn with_config(shards: usize, config: PoolConfig) -> Self {
        assert!(shards >= 1, "a sharded pool needs at least one shard");
        ShardedPool {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            shards: (0..shards).map(|_| ObjectPool::with_config(config)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn preferred_shard(&self) -> usize {
        PREFERRED.with(|p| {
            *p.borrow_mut().entry(self.id).or_insert_with(|| {
                // Initial spread: hash the thread id over the shards.
                let tid = std::thread::current().id();
                let mut h = std::hash::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                tid.hash(&mut h);
                (h.finish() as usize) % self.shards.len()
            })
        })
    }

    fn set_preferred(&self, idx: usize) {
        PREFERRED.with(|p| {
            p.borrow_mut().insert(self.id, idx);
        });
    }

    /// Acquire an object, spinning across shards on lock contention.
    ///
    /// Visits each shard at most once starting from the thread's preferred
    /// shard; the first unlocked shard with a parked object wins. If every
    /// unlocked shard is empty (or all shards are locked) a fresh object is
    /// built.
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> Box<T> {
        let n = self.shards.len();
        let start = self.preferred_shard();
        for off in 0..n {
            let idx = (start + off) % n;
            match self.shards[idx].try_acquire() {
                Ok(Some(obj)) => {
                    if off != 0 {
                        self.set_preferred(idx);
                    }
                    return obj;
                }
                Ok(None) => {
                    // Unlocked but empty: allocate fresh from "this arena".
                    if off != 0 {
                        self.set_preferred(idx);
                    }
                    self.shards[idx].stats().record_fresh();
                    return Box::new(fresh());
                }
                Err(()) => continue, // contended: spin to the next shard
            }
        }
        // All shards contended: fall back to a blocking acquire on the
        // preferred shard (ptmalloc ultimately waits too).
        self.shards[start].acquire(fresh)
    }

    /// Release an object to the thread's preferred shard, spilling to the
    /// next shard on contention.
    pub fn release(&self, mut obj: Box<T>) {
        let n = self.shards.len();
        let start = self.preferred_shard();
        for off in 0..n {
            let idx = (start + off) % n;
            match self.shards[idx].try_release(obj) {
                Ok(()) => {
                    if off != 0 {
                        self.set_preferred(idx);
                    }
                    return;
                }
                Err(back) => obj = back,
            }
        }
        self.shards[start].release(obj);
    }

    /// Total parked objects across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(ObjectPool::len).sum()
    }

    /// True if no shard holds a parked object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all parked objects in all shards.
    pub fn trim(&self) -> usize {
        self.shards.iter().map(ObjectPool::trim).sum()
    }

    /// Aggregate statistics across shards.
    pub fn stats(&self) -> StatsSnapshot {
        let mut agg = StatsSnapshot::default();
        for s in &self.shards {
            agg.merge(&s.stats().snapshot());
        }
        agg
    }

    /// Per-shard parked-object counts (for balance diagnostics).
    pub fn shard_lengths(&self) -> Vec<usize> {
        self.shards.iter().map(ObjectPool::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_shard_behaves_like_object_pool() {
        let pool: ShardedPool<u32> = ShardedPool::new(1);
        let a = pool.acquire(|| 1);
        pool.release(a);
        let b = pool.acquire(|| 2);
        assert_eq!(*b, 1);
        assert_eq!(pool.stats().pool_hits, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: ShardedPool<u32> = ShardedPool::new(0);
    }

    #[test]
    fn same_thread_reuses_same_shard() {
        let pool: ShardedPool<u32> = ShardedPool::new(8);
        let a = pool.acquire(|| 1);
        pool.release(a);
        let b = pool.acquire(|| 2);
        // Uncontended: release and acquire hit the same shard → reuse.
        assert_eq!(*b, 1);
    }

    #[test]
    fn concurrent_threads_spread_and_survive() {
        let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let b = p.acquire(|| t * 1000 + i);
                    p.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.pool_hits + stats.fresh_allocs, 8 * 200);
        // All objects came back.
        assert_eq!(pool.len() as u64, stats.fresh_allocs);
    }

    #[test]
    fn trim_across_shards() {
        let pool: ShardedPool<u8> = ShardedPool::new(4);
        for i in 0..10 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.trim(), 10);
        assert!(pool.is_empty());
    }

    #[test]
    fn distinct_pools_have_independent_preferences() {
        let p1: ShardedPool<u8> = ShardedPool::new(4);
        let p2: ShardedPool<u8> = ShardedPool::new(4);
        p1.release(Box::new(1));
        p2.release(Box::new(2));
        assert_eq!(p1.len(), 1);
        assert_eq!(p2.len(), 1);
        assert_eq!(*p1.acquire(|| 9), 1);
        assert_eq!(*p2.acquire(|| 9), 2);
    }
}
