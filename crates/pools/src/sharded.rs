//! Pool sharding: the ptmalloc-derived strategy Amplify uses to "spread the
//! threads over a number of pools to avoid lock contention on a
//! multiprocessor" (§3.2), fronted by lock-free thread-local
//! [magazines](crate::magazine).
//!
//! Each thread gets a home shard assigned round-robin on first touch (a
//! one-time cached handle — no per-operation thread-id hashing or map
//! probe) and a small magazine of parked objects. Steady-state
//! acquire/release never locks: it pops/pushes the magazine. A shard lock
//! is taken only to refill an empty magazine or flush a full one, in
//! batches of about half the magazine, and contention on that lock still
//! *spins* the thread to the next shard exactly like ptmalloc's
//! arena-selection rule.
//!
//! Constructing the pool with a magazine capacity of 0 (see
//! [`ShardedPool::with_magazines`]) disables the cache and yields the bare
//! try-lock-and-spill sharding — the baseline the Criterion benchmarks
//! compare the fast path against.

use crate::fault;
use crate::limits::PoolConfig;
use crate::magazine::{self, Depot, PushOutcome, DEFAULT_MAGAZINE_CAP};
use crate::object_pool::ObjectPool;
use crate::obs::{pool_event, pool_hist};
use crate::pool_box::{PoolBox, SlabReserve};
use crate::stats::StatsSnapshot;
use std::sync::Arc;

/// A pool split into `n` independently locked shards behind thread-local
/// magazines.
#[derive(Debug)]
pub struct ShardedPool<T> {
    depot: Arc<Depot<T>>,
}

impl<T> ShardedPool<T> {
    /// Create a pool with `shards` independent free lists (must be ≥ 1) and
    /// the default magazine capacity.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, PoolConfig::default())
    }

    /// Create a sharded pool with per-shard limits.
    pub fn with_config(shards: usize, config: PoolConfig) -> Self {
        Self::with_magazines(shards, config, DEFAULT_MAGAZINE_CAP)
    }

    /// Create a sharded pool with an explicit per-thread magazine capacity.
    /// `magazine_cap == 0` disables magazines: every operation goes straight
    /// to the shards (the pre-magazine behaviour, kept for comparison).
    pub fn with_magazines(shards: usize, config: PoolConfig, magazine_cap: usize) -> Self {
        ShardedPool { depot: Arc::new(Depot::new(shards, config, magazine_cap)) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.depot.shards.len()
    }

    /// Objects a thread's magazine may cache (0 = magazines disabled).
    pub fn magazine_capacity(&self) -> usize {
        self.depot.magazine_cap
    }

    /// Total parked objects: shard free lists, the depot's parked
    /// magazines, and all thread magazines.
    pub fn len(&self) -> usize {
        self.depot.shards.iter().map(ObjectPool::len).sum::<usize>()
            + self.depot.depot_parked()
            + self.depot.magazine_parked()
    }

    /// Objects cached in thread magazines (conservation diagnostics).
    pub fn magazine_parked(&self) -> usize {
        self.depot.magazine_parked()
    }

    /// Objects parked in full magazines on the depot (conservation
    /// diagnostics).
    pub fn depot_parked(&self) -> usize {
        self.depot.depot_parked()
    }

    /// True if no shard or magazine holds a parked object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate statistics: per-shard counters plus the magazine fast
    /// path's hit/fresh/release counts.
    pub fn stats(&self) -> StatsSnapshot {
        let mut agg = self.depot.stats.snapshot();
        let (mag_hits, mag_releases) = self.depot.magazine_hot_counts();
        agg.add_magazine_counts(mag_hits, mag_releases);
        for s in self.depot.shards.iter() {
            agg.merge(&s.stats().snapshot());
        }
        agg
    }

    /// Per-shard parked-object counts (for balance diagnostics; magazine
    /// contents are not attributed to a shard).
    pub fn shard_lengths(&self) -> Vec<usize> {
        self.depot.shards.iter().map(ObjectPool::len).collect()
    }

    /// Where this pool's parked memory sits right now, tier by tier —
    /// the typed-pool analogue of the global front-end's parked gauges,
    /// so a heap profile can attribute "allocated but idle" bytes to
    /// thread magazines vs depot stacks vs shard free lists.
    pub fn parked_breakdown(&self) -> ParkedBreakdown {
        ParkedBreakdown {
            object_bytes: std::mem::size_of::<T>(),
            magazine_objects: self.depot.magazine_parked(),
            depot_objects: self.depot.depot_parked(),
            shard_objects: self.depot.shards.iter().map(ObjectPool::len).sum(),
        }
    }
}

/// Tiered parked-object accounting for one [`ShardedPool`] (a point-in-time
/// observation: concurrent traffic moves objects between tiers, but every
/// parked object is in exactly one tier at any instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedBreakdown {
    /// `size_of::<T>()`: the scale factor for [`Self::parked_bytes`].
    pub object_bytes: usize,
    /// Objects cached in live thread magazines.
    pub magazine_objects: usize,
    /// Objects inside full magazines parked on the depot stacks.
    pub depot_objects: usize,
    /// Objects on shard free lists.
    pub shard_objects: usize,
}

impl ParkedBreakdown {
    /// All parked objects across the three tiers.
    pub fn total_objects(&self) -> usize {
        self.magazine_objects + self.depot_objects + self.shard_objects
    }

    /// Payload bytes held by parked objects (excludes `Vec`/node overhead:
    /// this is the reuse-value of the cache, not its exact footprint).
    pub fn parked_bytes(&self) -> usize {
        self.total_objects() * self.object_bytes
    }
}

impl<T: 'static> ShardedPool<T> {
    /// Acquire an object: magazine pop on the fast path, a one-CAS full
    /// magazine swap from the depot on a miss, batch refill from the
    /// shards after that, and slab-carved fresh allocation last.
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> PoolBox<T> {
        self.acquire_with(fresh, |_| {})
    }

    /// Like [`ShardedPool::acquire`], but re-initializes reused objects
    /// with `reinit` so callers always get a ready object.
    pub fn acquire_with(
        &self,
        fresh: impl FnOnce() -> T,
        reinit: impl FnOnce(&mut T),
    ) -> PoolBox<T> {
        // The fault decision is drawn once, at entry, so an injection
        // schedule depends only on (seed, thread, op ordinal) — never on
        // which cache level would have served the request.
        if fault::fail_fresh_alloc() {
            return self.acquire_fallback(fresh);
        }
        if self.depot.magazine_cap == 0 {
            return self.acquire_direct(fresh, reinit);
        }
        if let Some(mut obj) = magazine::pop(&self.depot) {
            // The hit itself was counted inside `pop` (a plain field in the
            // magazine — no shared-counter RMW on the fast path); only the
            // telemetry event is emitted here.
            pool_event!(AcquireHit);
            reinit(&mut obj);
            return obj;
        }
        self.acquire_cold(fresh, reinit)
    }

    /// The three-level miss path, outlined so the hit path stays small.
    #[cold]
    fn acquire_cold(&self, fresh: impl FnOnce() -> T, reinit: impl FnOnce(&mut T)) -> PoolBox<T> {
        // Level 2: swap the empty magazine for a full one from the depot —
        // one CAS, no locks, no per-object moves.
        if let Some(mut obj) = magazine::depot_swap(&self.depot) {
            self.depot.stats.record_hit();
            reinit(&mut obj);
            return obj;
        }
        // Level 3: pull a batch from the shards under one lock (skipped
        // entirely when the tracked shard population is below the depot
        // gate — one relaxed load instead of a round of try-locks).
        if self.depot.shard_parked() >= self.depot.depot_gate {
            let target = self.depot.refill_target;
            let start = magazine::home_shard(&self.depot);
            let mut batch = Vec::with_capacity(target);
            let used = self.depot.refill_batch(start, target, &mut batch);
            if let Some(mut obj) = batch.pop() {
                self.depot.guard.record_unpark();
                self.depot.stats.record_hit();
                pool_event!(MagazineRefill, batch.len() + 1);
                pool_hist!("pools.magazine_occupancy", batch.len());
                magazine::stash(&self.depot, used, batch);
                reinit(&mut obj);
                return obj;
            }
            if used != start {
                magazine::set_home_shard(&self.depot, used);
            }
        }
        // Level 4: fresh allocation, carved from a contiguous slab so one
        // heap call covers a whole magazine's worth of future misses. The
        // constructor runs outside the magazine borrow (it is user code).
        self.depot.stats.record_fresh();
        if let Some(slot) = magazine::take_reserve_slot(&self.depot) {
            return slot.fill(fresh());
        }
        if self.depot.slab_objects > 0 && !fault::fail_slab_carve() {
            if let Some(mut reserve) = SlabReserve::carve(self.depot.slab_objects) {
                self.depot.stats.record_slab_carve();
                pool_event!(SlabCarve, self.depot.slab_objects);
                pool_hist!("pools.slab_objects", self.depot.slab_objects);
                let slot = reserve.take().expect("a fresh slab has at least two slots");
                magazine::stash_reserve(&self.depot, reserve);
                return slot.fill(fresh());
            }
        }
        PoolBox::new(fresh())
    }

    /// Graceful degradation under an injected allocation failure: skip
    /// every cache level and hand back a plain heap object, counted as a
    /// fresh alloc *plus* a fallback (see [`crate::fault`]) — never a
    /// panic, and never a change to what the caller observes.
    #[cold]
    fn acquire_fallback(&self, fresh: impl FnOnce() -> T) -> PoolBox<T> {
        self.depot.stats.record_fresh();
        self.depot.stats.record_fallback();
        PoolBox::new(fresh())
    }

    /// Release an object into the thread's magazine; a full magazine parks
    /// wholesale on the depot (uncapped pools, one CAS) or flushes its
    /// older half to a shard (capped pools, spilling on contention).
    pub fn release(&self, obj: impl Into<PoolBox<T>>) {
        let obj = obj.into();
        if self.depot.magazine_cap == 0 {
            return self.release_direct(obj);
        }
        // Counted inside `push` (plain magazine field); event only here.
        pool_event!(Release);
        match magazine::push(&self.depot, obj) {
            None | Some(PushOutcome::Parked) => {}
            Some(PushOutcome::Flush { mut buf, shard }) => {
                pool_event!(MagazineFlush, buf.len());
                pool_hist!(
                    "pools.magazine_occupancy",
                    (self.depot.magazine_cap + 1).saturating_sub(buf.len())
                );
                self.depot.park_batch(shard, &mut buf);
                magazine::restore_flush_buf(&self.depot, buf);
            }
        }
    }

    /// Drop all parked objects: the calling thread's magazine, then every
    /// shard. Objects cached by *other* threads are invalidated and drop
    /// lazily on those threads' next pool operation (they are still counted
    /// by [`ShardedPool::len`] until then, because they are still resident).
    pub fn trim(&self) -> usize {
        let local = magazine::drain_local(&self.depot);
        let n_local = local.len();
        self.depot.guard.record_reclaim(n_local);
        drop(local);
        // Drain the depot stacks before bumping the epoch: a magazine
        // parked concurrently with the drain still carries the old epoch,
        // so the next swap recognizes it as stale and drops it then.
        let n_depot = self.depot.drain_depot();
        self.depot.bump_trim_epoch();
        n_local + n_depot + self.depot.trim_shards()
    }

    /// Park the calling thread's magazine contents back into the shards
    /// (without dropping them). Returns how many objects moved. Useful
    /// before handing a pool's contents to another thread, and in tests.
    pub fn flush_local_magazine(&self) -> usize {
        let mut items = magazine::drain_local(&self.depot);
        let n = items.len();
        if n > 0 {
            let shard = magazine::home_shard(&self.depot);
            self.depot.park_batch(shard, &mut items);
        }
        n
    }

    /// The pre-magazine path: try-lock the home shard, spin to the next on
    /// contention, block on the home shard when all are contended.
    fn acquire_direct(&self, fresh: impl FnOnce() -> T, reinit: impl FnOnce(&mut T)) -> PoolBox<T> {
        let n = self.depot.shards.len();
        let start = magazine::home_shard(&self.depot);
        for off in 0..n {
            let idx = (start + off) % n;
            match self.depot.shards[idx].try_acquire() {
                Ok(Some(mut obj)) => {
                    if off != 0 {
                        magazine::set_home_shard(&self.depot, idx);
                    }
                    self.depot.guard.record_unpark();
                    reinit(&mut obj);
                    return obj;
                }
                Ok(None) => {
                    // Unlocked but empty: allocate fresh from "this arena".
                    if off != 0 {
                        magazine::set_home_shard(&self.depot, idx);
                    }
                    self.depot.shards[idx].stats().record_fresh();
                    return PoolBox::new(fresh());
                }
                Err(()) => continue, // contended: spin to the next shard
            }
        }
        // Blocking fallback: no fault draw (the entry already decided), and
        // the hit flag keeps the guard ledger exact.
        let (obj, hit) = self.depot.shards[start].acquire_with_inner(fresh, reinit);
        if hit {
            self.depot.guard.record_unpark();
        }
        obj
    }

    fn release_direct(&self, mut obj: PoolBox<T>) {
        self.depot.guard.record_park();
        let n = self.depot.shards.len();
        let start = magazine::home_shard(&self.depot);
        for off in 0..n {
            let idx = (start + off) % n;
            match self.depot.shards[idx].try_release(obj) {
                Ok(()) => {
                    if off != 0 {
                        magazine::set_home_shard(&self.depot, idx);
                    }
                    return;
                }
                Err(back) => obj = back,
            }
        }
        self.depot.shards[start].release(obj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Barrier};

    #[test]
    fn single_shard_behaves_like_object_pool() {
        let pool: ShardedPool<u32> = ShardedPool::new(1);
        let a = pool.acquire(|| 1);
        pool.release(a);
        let b = pool.acquire(|| 2);
        assert_eq!(*b, 1);
        assert_eq!(pool.stats().pool_hits(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: ShardedPool<u32> = ShardedPool::new(0);
    }

    #[test]
    fn same_thread_reuses_same_shard() {
        let pool: ShardedPool<u32> = ShardedPool::new(8);
        let a = pool.acquire(|| 1);
        pool.release(a);
        let b = pool.acquire(|| 2);
        // Uncontended: the release is cached and the acquire reuses it.
        assert_eq!(*b, 1);
    }

    #[test]
    fn concurrent_threads_spread_and_survive() {
        let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let b = p.acquire(|| t * 1000 + i);
                    p.release(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.pool_hits() + stats.fresh_allocs(), 8 * 200);
        // All objects came back (exited threads flush their magazines).
        assert_eq!(pool.len() as u64, stats.fresh_allocs());
    }

    #[test]
    fn trim_across_shards() {
        let pool: ShardedPool<u8> = ShardedPool::new(4);
        for i in 0..10 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.trim(), 10);
        assert!(pool.is_empty());
    }

    #[test]
    fn distinct_pools_have_independent_preferences() {
        let p1: ShardedPool<u8> = ShardedPool::new(4);
        let p2: ShardedPool<u8> = ShardedPool::new(4);
        p1.release(Box::new(1));
        p2.release(Box::new(2));
        assert_eq!(p1.len(), 1);
        assert_eq!(p2.len(), 1);
        assert_eq!(*p1.acquire(|| 9), 1);
        assert_eq!(*p2.acquire(|| 9), 2);
    }

    #[test]
    fn magazine_overflow_parks_on_depot() {
        let pool: ShardedPool<u32> = ShardedPool::with_magazines(2, PoolConfig::default(), 4);
        for i in 0..10 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.len(), 10, "nothing lost across overflow parks");
        assert!(pool.depot_parked() > 0, "overflow must park whole magazines on the depot");
        assert!(pool.magazine_parked() <= pool.magazine_capacity());
        // A miss swaps a parked magazine back in without touching a shard.
        let mut drained = Vec::new();
        for _ in 0..10 {
            drained.push(pool.acquire(|| 999));
        }
        let mut got: Vec<u32> = drained.iter().map(|b| **b).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u32>>(), "every object comes back exactly once");
        assert_eq!(pool.stats().fresh_allocs(), 0, "depot swaps avoid fresh allocation");
    }

    #[test]
    fn parked_breakdown_tiers_sum_to_len() {
        let pool: ShardedPool<u64> = ShardedPool::with_magazines(2, PoolConfig::default(), 4);
        for i in 0..10 {
            pool.release(Box::new(i));
        }
        let b = pool.parked_breakdown();
        assert_eq!(b.total_objects(), pool.len(), "tiers must partition the parked set");
        assert_eq!(b.object_bytes, 8);
        assert_eq!(b.parked_bytes(), pool.len() * 8);
        assert!(b.magazine_objects + b.depot_objects > 0, "magazines took the overflow");
        pool.trim();
        pool.flush_local_magazine();
        assert_eq!(pool.parked_breakdown().total_objects(), pool.len());
    }

    #[test]
    fn capped_magazine_overflow_flushes_to_shards() {
        let config = PoolConfig { max_objects: Some(64), ..Default::default() };
        let pool: ShardedPool<u32> = ShardedPool::with_magazines(2, config, 4);
        for i in 0..10 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.len(), 10, "nothing lost across overflow flushes");
        assert_eq!(pool.depot_parked(), 0, "capped pools bypass the depot");
        let in_shards: usize = pool.shard_lengths().iter().sum();
        assert!(in_shards > 0, "overflow must land in a shard free list");
        assert!(pool.len() - in_shards <= pool.magazine_capacity());
    }

    #[test]
    fn flush_local_magazine_moves_objects_without_dropping() {
        let pool: ShardedPool<u32> = ShardedPool::new(2);
        for i in 0..5 {
            pool.release(Box::new(i));
        }
        assert_eq!(pool.shard_lengths().iter().sum::<usize>(), 0);
        assert_eq!(pool.flush_local_magazine(), 5);
        assert_eq!(pool.shard_lengths().iter().sum::<usize>(), 5);
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn direct_mode_still_pools() {
        let pool: ShardedPool<u32> = ShardedPool::with_magazines(4, PoolConfig::default(), 0);
        let a = pool.acquire(|| 1);
        pool.release(a);
        assert_eq!(pool.shard_lengths().iter().sum::<usize>(), 1);
        let b = pool.acquire(|| 2);
        assert_eq!(*b, 1, "direct mode reuses via the home shard");
        assert_eq!(pool.stats().pool_hits(), 1);
    }

    #[test]
    fn panicking_thread_still_folds_magazine_counts() {
        let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(2));
        let p = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                let b = p.acquire(|| i);
                p.release(b);
            }
            panic!("worker dies mid-churn");
        });
        assert!(t.join().is_err());
        // The worker's magazine folded its locally-counted hits and
        // releases during the panic's TLS teardown — none may be lost.
        let stats = pool.stats();
        assert_eq!(
            stats.pool_hits() + stats.fresh_allocs(),
            100,
            "hits + fresh must equal allocs even when the thread panicked"
        );
        assert_eq!(stats.releases(), 100);
    }

    #[test]
    fn trim_invalidates_remote_magazines_lazily() {
        let pool: Arc<ShardedPool<u32>> = Arc::new(ShardedPool::new(2));
        let barrier = Arc::new(Barrier::new(2));
        let (p, b) = (Arc::clone(&pool), Arc::clone(&barrier));
        let t = std::thread::spawn(move || {
            for i in 0..5 {
                p.release(Box::new(i));
            }
            b.wait(); // A: five objects cached in this thread's magazine
            b.wait(); // B: main has trimmed
            let obj = p.acquire(|| 99);
            assert_eq!(*obj, 99, "a stale cache must not serve pre-trim objects");
        });
        barrier.wait(); // A
        assert_eq!(pool.len(), 5);
        // Remote caches can't be drained from here; trim reports what it
        // actually reclaimed and invalidates the rest.
        assert_eq!(pool.trim(), 0);
        barrier.wait(); // B
        t.join().unwrap();
        assert_eq!(pool.len(), 0, "stale magazine drops its objects on next use");
    }
}
