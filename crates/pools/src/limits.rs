//! Pool capacity and shadow-size limits (§5.2 of the paper).
//!
//! The BGw experience taught the authors to bound Amplify's memory
//! overhead in three ways, all represented here:
//!
//! 1. a **maximum number of objects per pool** — excess releases fall back
//!    to the normal allocator;
//! 2. a **maximum size for shadowed memory** — oversized blocks are freed
//!    instead of parked, so one huge allocation cannot pin a huge chunk;
//! 3. the **half-size reuse rule** for shadowed arrays — a parked block is
//!    reused only if the request is not smaller than half the block, which
//!    bounds steady-state consumption to twice the live size.

/// Configuration shared by the pool types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum dead objects kept per pool (per shard for sharded pools).
    /// `None` means unbounded, the paper's default for the synthetic tests.
    pub max_objects: Option<usize>,
    /// Maximum byte size of a shadowed array block; larger blocks are freed
    /// on release rather than parked.
    pub max_shadow_bytes: Option<usize>,
    /// Reuse a parked array only when `requested >= parked_capacity / 2`
    /// (and `requested <= parked_capacity`). Disabling reuses any
    /// sufficiently large block.
    pub half_size_rule: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { max_objects: None, max_shadow_bytes: None, half_size_rule: true }
    }
}

impl PoolConfig {
    /// The unbounded configuration used by the paper's synthetic tests.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// The BGw configuration: caps on both pool population and shadowed
    /// block size.
    pub fn bgw(max_objects: usize, max_shadow_bytes: usize) -> Self {
        PoolConfig {
            max_objects: Some(max_objects),
            max_shadow_bytes: Some(max_shadow_bytes),
            half_size_rule: true,
        }
    }

    /// True if a pool holding `len` dead objects may accept another.
    pub fn accepts_object(&self, len: usize) -> bool {
        match self.max_objects {
            Some(max) => len < max,
            None => true,
        }
    }

    /// True if an array block of `capacity` bytes may be parked as shadow
    /// memory.
    pub fn accepts_shadow(&self, capacity: usize) -> bool {
        match self.max_shadow_bytes {
            Some(max) => capacity <= max,
            None => true,
        }
    }

    /// Decide whether a parked block of `capacity` bytes may serve a
    /// request of `requested` bytes.
    pub fn may_reuse(&self, capacity: usize, requested: usize) -> bool {
        if requested > capacity {
            return false;
        }
        if self.half_size_rule {
            // Paper: "if the allocated memory is smaller than the shadow
            // memory but not smaller than half the shadow memory, then the
            // shadow memory is reused". Ceiling division keeps the paper's
            // guarantee ("maximum memory consumption is twice the normal")
            // exact for odd capacities.
            requested >= capacity.div_ceil(2)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let c = PoolConfig::default();
        assert!(c.accepts_object(usize::MAX - 1));
        assert!(c.accepts_shadow(usize::MAX));
    }

    #[test]
    fn object_cap() {
        let c = PoolConfig { max_objects: Some(2), ..Default::default() };
        assert!(c.accepts_object(0));
        assert!(c.accepts_object(1));
        assert!(!c.accepts_object(2));
    }

    #[test]
    fn shadow_cap() {
        let c = PoolConfig { max_shadow_bytes: Some(1024), ..Default::default() };
        assert!(c.accepts_shadow(1024));
        assert!(!c.accepts_shadow(1025));
    }

    #[test]
    fn half_size_rule_window() {
        let c = PoolConfig::default();
        assert!(c.may_reuse(100, 100));
        assert!(c.may_reuse(100, 50));
        assert!(!c.may_reuse(100, 49));
        assert!(!c.may_reuse(100, 101));
    }

    #[test]
    fn half_size_rule_disabled() {
        let c = PoolConfig { half_size_rule: false, ..Default::default() };
        assert!(c.may_reuse(100, 1));
        assert!(!c.may_reuse(100, 101));
    }

    #[test]
    fn bgw_preset() {
        let c = PoolConfig::bgw(64, 4096);
        assert_eq!(c.max_objects, Some(64));
        assert_eq!(c.max_shadow_bytes, Some(4096));
        assert!(c.half_size_rule);
    }
}
