//! Pool capacity and shadow-size limits (§5.2 of the paper).
//!
//! The BGw experience taught the authors to bound Amplify's memory
//! overhead in three ways, all represented here:
//!
//! 1. a **maximum number of objects per pool** — excess releases fall back
//!    to the normal allocator;
//! 2. a **maximum size for shadowed memory** — oversized blocks are freed
//!    instead of parked, so one huge allocation cannot pin a huge chunk;
//! 3. the **half-size reuse rule** for shadowed arrays — a parked block is
//!    reused only if the request is not smaller than half the block, which
//!    bounds steady-state consumption to twice the live size.

/// Configuration shared by the pool types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum dead objects kept per pool (per shard for sharded pools).
    /// `None` means unbounded, the paper's default for the synthetic tests.
    pub max_objects: Option<usize>,
    /// Maximum byte size of a shadowed array block; larger blocks are freed
    /// on release rather than parked.
    pub max_shadow_bytes: Option<usize>,
    /// Reuse a parked array only when `requested >= parked_capacity / 2`
    /// (and `requested <= parked_capacity`). Disabling reuses any
    /// sufficiently large block.
    pub half_size_rule: bool,
    /// Minimum shard free-list population before a cold acquire attempts a
    /// batched shard refill instead of falling through to slab carving.
    /// The historical behaviour (`shard_parked() > 0`) is gate 1.
    pub depot_gate: usize,
    /// Objects moved per batched shard refill. `None` derives the
    /// historical `(magazine_cap / 2).max(1)`.
    pub refill_batch: Option<usize>,
    /// Objects carved per fresh slab. `None` derives the historical
    /// `magazine_cap * 2`; either way the value is clamped to what a
    /// 64 KiB slab can hold.
    pub carve_batch: Option<usize>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_objects: None,
            max_shadow_bytes: None,
            half_size_rule: true,
            depot_gate: 1,
            refill_batch: None,
            carve_batch: None,
        }
    }
}

impl PoolConfig {
    /// The unbounded configuration used by the paper's synthetic tests.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// The BGw configuration: caps on both pool population and shadowed
    /// block size.
    pub fn bgw(max_objects: usize, max_shadow_bytes: usize) -> Self {
        PoolConfig {
            max_objects: Some(max_objects),
            max_shadow_bytes: Some(max_shadow_bytes),
            ..Self::default()
        }
    }

    /// Set the tuning knobs the offline tuner searches over. `refill_batch`
    /// and `carve_batch` of 0 mean "derive from the magazine cap" (the
    /// defaults); `depot_gate` is clamped to at least 1.
    pub fn with_tuning(
        mut self,
        depot_gate: usize,
        refill_batch: usize,
        carve_batch: usize,
    ) -> Self {
        self.depot_gate = depot_gate.max(1);
        self.refill_batch = if refill_batch == 0 { None } else { Some(refill_batch) };
        self.carve_batch = if carve_batch == 0 { None } else { Some(carve_batch) };
        self
    }

    /// Objects moved per batched shard refill for a given magazine cap.
    pub fn refill_target(&self, magazine_cap: usize) -> usize {
        match self.refill_batch {
            Some(n) => n.max(1),
            None => (magazine_cap / 2).max(1),
        }
    }

    /// True if a pool holding `len` dead objects may accept another.
    pub fn accepts_object(&self, len: usize) -> bool {
        match self.max_objects {
            Some(max) => len < max,
            None => true,
        }
    }

    /// True if an array block of `capacity` bytes may be parked as shadow
    /// memory.
    pub fn accepts_shadow(&self, capacity: usize) -> bool {
        match self.max_shadow_bytes {
            Some(max) => capacity <= max,
            None => true,
        }
    }

    /// Decide whether a parked block of `capacity` bytes may serve a
    /// request of `requested` bytes.
    pub fn may_reuse(&self, capacity: usize, requested: usize) -> bool {
        if requested > capacity {
            return false;
        }
        if self.half_size_rule {
            // Paper: "if the allocated memory is smaller than the shadow
            // memory but not smaller than half the shadow memory, then the
            // shadow memory is reused". Ceiling division keeps the paper's
            // guarantee ("maximum memory consumption is twice the normal")
            // exact for odd capacities.
            requested >= capacity.div_ceil(2)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let c = PoolConfig::default();
        assert!(c.accepts_object(usize::MAX - 1));
        assert!(c.accepts_shadow(usize::MAX));
    }

    #[test]
    fn object_cap() {
        let c = PoolConfig { max_objects: Some(2), ..Default::default() };
        assert!(c.accepts_object(0));
        assert!(c.accepts_object(1));
        assert!(!c.accepts_object(2));
    }

    #[test]
    fn shadow_cap() {
        let c = PoolConfig { max_shadow_bytes: Some(1024), ..Default::default() };
        assert!(c.accepts_shadow(1024));
        assert!(!c.accepts_shadow(1025));
    }

    #[test]
    fn half_size_rule_window() {
        let c = PoolConfig::default();
        assert!(c.may_reuse(100, 100));
        assert!(c.may_reuse(100, 50));
        assert!(!c.may_reuse(100, 49));
        assert!(!c.may_reuse(100, 101));
    }

    #[test]
    fn half_size_rule_disabled() {
        let c = PoolConfig { half_size_rule: false, ..Default::default() };
        assert!(c.may_reuse(100, 1));
        assert!(!c.may_reuse(100, 101));
    }

    #[test]
    fn bgw_preset() {
        let c = PoolConfig::bgw(64, 4096);
        assert_eq!(c.max_objects, Some(64));
        assert_eq!(c.max_shadow_bytes, Some(4096));
        assert!(c.half_size_rule);
        assert_eq!(c.depot_gate, 1);
        assert_eq!(c.refill_batch, None);
        assert_eq!(c.carve_batch, None);
    }

    #[test]
    fn default_tuning_matches_historical_constants() {
        let c = PoolConfig::default();
        assert_eq!(c.depot_gate, 1);
        // Historical refill target was (magazine_cap / 2).max(1).
        assert_eq!(c.refill_target(32), 16);
        assert_eq!(c.refill_target(1), 1);
        assert_eq!(c.refill_target(0), 1);
    }

    #[test]
    fn with_tuning_clamps_and_maps_zero_to_default() {
        let c = PoolConfig::default().with_tuning(0, 0, 0);
        assert_eq!(c.depot_gate, 1);
        assert_eq!(c.refill_batch, None);
        assert_eq!(c.carve_batch, None);
        let c = PoolConfig::default().with_tuning(4, 8, 128);
        assert_eq!(c.depot_gate, 4);
        assert_eq!(c.refill_target(32), 8);
        assert_eq!(c.carve_batch, Some(128));
    }
}
