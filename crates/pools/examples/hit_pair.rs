//! Micro-benchmark for the magazine acquire/release hit pair — the number
//! the `telemetry` overhead budget is measured against — and the acquire
//! **miss** pair (acquire-on-empty + drop), the cliff the magazine depot
//! and slab carving flatten. Run both builds:
//!
//! ```text
//! cargo run --release -p pools --example hit_pair
//! cargo run --release -p pools --example hit_pair --features telemetry
//! ```

use pools::{PoolConfig, ShardedPool, DEFAULT_MAGAZINE_CAP};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let pool: ShardedPool<[u8; 64]> =
        ShardedPool::with_magazines(4, PoolConfig::default(), DEFAULT_MAGAZINE_CAP);
    // Prime the magazine so the loop below stays on the hit path.
    let seed: Vec<_> = (0..8).map(|_| pool.acquire(|| [0u8; 64])).collect();
    for x in seed {
        pool.release(x);
    }

    let n: u64 = 20_000_000;
    for _ in 0..1_000_000 {
        let x = pool.acquire(|| [0u8; 64]);
        black_box(&x);
        pool.release(x);
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..n {
            let x = pool.acquire(|| [0u8; 64]);
            black_box(&x);
            pool.release(x);
        }
        best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
    }
    println!("hit pair:  {best:.2} ns (telemetry {})", cfg!(feature = "telemetry"));

    // Miss pair: acquire-and-drop keeps every cache level empty, so each
    // acquire walks the full cold path (magazine → depot → shards → slab).
    let miss_pool: ShardedPool<[u8; 64]> =
        ShardedPool::with_magazines(4, PoolConfig::default(), DEFAULT_MAGAZINE_CAP);
    let m: u64 = 5_000_000;
    for _ in 0..500_000 {
        let x = miss_pool.acquire(|| [0u8; 64]);
        black_box(&x);
    }
    let mut best_miss = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..m {
            let x = miss_pool.acquire(|| [0u8; 64]);
            black_box(&x);
        }
        best_miss = best_miss.min(t.elapsed().as_nanos() as f64 / m as f64);
    }
    println!("miss pair: {best_miss:.2} ns (telemetry {})", cfg!(feature = "telemetry"));
}
