//! Concurrent snapshot consistency: registry snapshots taken while worker
//! threads hammer a sharded pool must stay internally coherent.
//!
//! The counters are relaxed atomics read one at a time, so a snapshot is
//! not a point-in-time cut across counters — but two invariants must still
//! hold from any observer:
//!
//! * each counter is monotonically non-decreasing across snapshots;
//! * `releases` can never exceed `total_allocs` by more than the worker
//!   count (a worker may have released an object whose acquire-counter
//!   bump it observed before we did, but each worker holds at most one
//!   object at a time here).

use pools::sharded::ShardedPool;
use pools::PoolRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WORKERS: usize = 4;
const OPS_PER_WORKER: u64 = 20_000;
const SNAPSHOTS: usize = 200;

#[test]
fn snapshots_stay_coherent_under_concurrent_traffic() {
    let registry = Arc::new(PoolRegistry::new());
    let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(4));
    registry.register("hammered", &pool);

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..WORKERS as u64 {
        let pool = Arc::clone(&pool);
        workers.push(std::thread::spawn(move || {
            for i in 0..OPS_PER_WORKER {
                let obj = pool.acquire(|| t * OPS_PER_WORKER + i);
                pool.release(obj);
            }
        }));
    }

    // Observer: take registry snapshots while the workers run.
    let observer = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut prev = None;
            let mut taken = 0usize;
            while taken < SNAPSHOTS && !stop.load(Ordering::Relaxed) {
                let snaps = registry.pool_snapshots();
                assert_eq!(snaps.len(), 1, "exactly one registered pool");
                let s = &snaps[0];
                assert_eq!(s.name, "hammered");
                let total_allocs = s.pool_hits + s.fresh_allocs;
                assert!(
                    s.releases <= total_allocs + WORKERS as u64,
                    "releases {} outran allocations {} by more than the \
                     worker count",
                    s.releases,
                    total_allocs
                );
                if let Some(prev) = &prev {
                    let p: &telemetry::report::PoolSnapshot = prev;
                    assert!(s.pool_hits >= p.pool_hits, "pool_hits went backwards");
                    assert!(s.fresh_allocs >= p.fresh_allocs, "fresh_allocs went backwards");
                    assert!(s.releases >= p.releases, "releases went backwards");
                    assert!(s.dropped >= p.dropped, "dropped went backwards");
                    assert!(s.failed_locks >= p.failed_locks, "failed_locks went backwards");
                    assert!(
                        s.lock_acquisitions >= p.lock_acquisitions,
                        "lock_acquisitions went backwards"
                    );
                }
                prev = Some(s.clone());
                taken += 1;
            }
            taken
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let taken = observer.join().unwrap();
    assert!(taken > 0, "observer never got a snapshot in");

    // Quiescent: now the books must balance exactly. Workers flushed their
    // magazines on exit, so every release is accounted for.
    let s = &registry.pool_snapshots()[0];
    let expected_ops = (WORKERS as u64) * OPS_PER_WORKER;
    assert_eq!(s.pool_hits + s.fresh_allocs, expected_ops);
    assert_eq!(s.releases, expected_ops);
    assert_eq!(s.parked, s.fresh_allocs, "all fresh objects end up parked");
}
