//! Cross-thread free stress for the size-class front-end: producers
//! allocate, a dedicated consumer frees, so every release rides the
//! remote-free queue (the path `run_workload`'s free-where-you-allocate
//! discipline never exercises).
//!
//! Home-shard pinning makes the ledger exact: producers live on shards
//! 0..P, the consumer on the last shard, and the consumer never performs a
//! classed allocation — so no slab is ever stamped with the consumer's
//! shard, every consumer free files into a foreign bucket, and every
//! bucket ships to a remote queue (at a batch boundary or teardown).
//! Producers never free, so nothing else touches the remote ledger.
//!
//! Exact-equality accounting only holds feature-off (with `global-alloc`
//! installed, the test harness's own heap traffic shares the process-wide
//! ledger); installed builds assert the same invariants as lower bounds.
//! The double-hand-out and id-uniqueness checks are exact in every mode.
//!
//! Tests in this binary serialize on one lock: the ledger is process-wide.

use pools::global::{self, CLASS_SHARDS};
use std::alloc::Layout;
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn ledger_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

const BLOCK_LAYOUT: Layout = match Layout::from_size_align(64, 8) {
    Ok(l) => l,
    Err(_) => panic!("static layout"),
};

/// Producers alloc + stamp + send; the consumer checks, frees remotely,
/// and tracks liveness. Returns (blocks moved, distinct ids seen).
fn producer_consumer_run(producers: usize, per_producer: usize) -> (usize, usize) {
    assert!(producers < CLASS_SHARDS, "need a consumer shard disjoint from producers");
    let (tx, rx) = mpsc::channel::<usize>();
    std::thread::scope(|s| {
        for p in 0..producers {
            let tx = tx.clone();
            s.spawn(move || {
                assert!(global::pin_home_shard(p), "producer {p} must get a cache");
                for i in 0..per_producer {
                    let block = global::raw_alloc(BLOCK_LAYOUT);
                    assert!(!block.is_null());
                    let id = ((p as u64) << 32) | i as u64;
                    unsafe { *(block as *mut u64) = id };
                    tx.send(block as usize).expect("consumer alive");
                }
            });
        }
        drop(tx);
        let consumer = s.spawn(move || {
            // The consumer allocates nothing classed; its cache exists only
            // so `dealloc` sees home != block-shard and goes remote.
            assert!(global::pin_home_shard(CLASS_SHARDS - 1));
            let mut live: HashSet<usize> = HashSet::new();
            let mut ids: HashSet<u64> = HashSet::new();
            let mut freed = 0usize;
            while let Ok(addr) = rx.recv() {
                assert!(
                    live.insert(addr),
                    "block {addr:#x} handed out twice while live (double hand-out)"
                );
                let id = unsafe { *(addr as *const u64) };
                assert!(ids.insert(id), "id {id:#x} seen twice: two owners stamped one block");
                // Free *before* un-tracking: once freed the block may
                // recirculate, but its re-send is a later message, ordered
                // after the remove below on this single consumer thread.
                unsafe { global::raw_dealloc(addr as *mut u8, BLOCK_LAYOUT) };
                live.remove(&addr);
                freed += 1;
            }
            assert!(live.is_empty(), "{} blocks received but never freed", live.len());
            (freed, ids.len())
        });
        consumer.join().expect("consumer panicked")
    })
}

#[test]
fn cross_thread_frees_conserve_blocks_and_reconcile_the_remote_ledger() {
    let _g = ledger_lock();
    let before = global::stats();
    const PRODUCERS: usize = 4;
    const PER: usize = 20_000;
    let (freed, distinct_ids) = producer_consumer_run(PRODUCERS, PER);
    let total = (PRODUCERS * PER) as u64;
    assert_eq!(freed as u64, total);
    assert_eq!(distinct_ids as u64, total);

    // All workers have exited: their plain-field counters are folded, so
    // the snapshot is exact (feature-off) or a floor (installed harness).
    let after = global::stats();
    let allocs = after.class_allocs - before.class_allocs;
    let frees = after.class_frees - before.class_frees;
    let remote = after.remote_frees - before.remote_frees;
    if global::installed() {
        assert!(allocs >= total, "classed allocs {allocs} < {total}");
        assert!(frees >= total, "classed frees {frees} < {total}");
        assert!(remote >= total, "remote frees {remote} < {total}");
    } else {
        // Conservation: every block allocated was freed, exactly once...
        assert_eq!(allocs, total, "alloc count off");
        assert_eq!(frees, total, "free count off");
        // ...and every single free was a remote push (the consumer's home
        // shard never stamps a slab, so each free files into a foreign
        // bucket and ships to the owner's queue at a batch boundary or
        // teardown), reconciling the telemetry counter exactly against
        // the operation count. Producers only allocate, so they never
        // bucket anything; their flushes all land on central stacks.
        assert_eq!(remote, total, "remote_free ledger must equal consumer frees");
    }
    // The queue ledger itself always balances: pushed = drained + pending.
    assert_eq!(
        after.remote_frees,
        after.remote_drained + after.remote_pending,
        "remote queue ledger out of balance"
    );
    // Zero live bytes from this run's classed traffic: allocs == frees
    // above is exactly that statement (blocks live in slabs either way;
    // slab memory is process-lifetime by design).
}

/// Reclaim-under-churn (ISSUE 10): the cross-thread conservation run
/// with an aggressive reclaimer sweeping the whole time. Sweeps drain
/// remote chains and central stacks, retire idle slabs, and hand them
/// back through the quarantine pool — and none of it may invent, lose,
/// or double-hand-out a block, or unbalance the remote ledger (the
/// sweep's drains are counted as `remote_drained` like an owner's).
#[test]
fn slab_retirement_conserves_the_cross_thread_ledger() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let _g = ledger_lock();
    let before = global::stats();
    let reclaimed_before = pools::reclaim::totals().reclaimed_slabs;
    const PRODUCERS: usize = 3;
    const PER: usize = 15_000;

    let stop = AtomicBool::new(false);
    let passes = AtomicU64::new(0);
    let (freed, distinct) = std::thread::scope(|s| {
        let reclaimer = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                pools::reclaim::reclaim_all();
                passes.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        });
        let result = producer_consumer_run(PRODUCERS, PER);
        stop.store(true, Ordering::Relaxed);
        reclaimer.join().expect("reclaimer panicked");
        result
    });
    assert!(passes.load(Ordering::Relaxed) > 0, "the reclaimer never got a pass in");

    let total = (PRODUCERS * PER) as u64;
    assert_eq!(freed as u64, total);
    assert_eq!(distinct as u64, total, "every handed-out block distinct despite recarves");

    let after = global::stats();
    let allocs = after.class_allocs - before.class_allocs;
    let frees = after.class_frees - before.class_frees;
    if global::installed() {
        assert!(allocs >= total);
        assert!(frees >= total);
    } else {
        assert_eq!(allocs, total, "retirement must not invent or lose allocs");
        assert_eq!(frees, total, "retirement must not invent or lose frees");
    }
    assert_eq!(
        after.remote_frees,
        after.remote_drained + after.remote_pending,
        "sweep drains must keep the remote queue ledger balanced"
    );

    // The churn is idle now. A final pass trims whatever the concurrent
    // reclaimer's last lap left behind (it races the stop flag, so it
    // may already have swept the quiesced heap clean); cumulatively the
    // run must have retired at least one slab, and the retirement
    // ledger must reconcile against the stats surface.
    let trim = pools::reclaim::reclaim_all();
    let reclaimed_after = pools::reclaim::totals().reclaimed_slabs;
    assert!(
        reclaimed_after > reclaimed_before,
        "churn retired nothing ({reclaimed_before} -> {reclaimed_after}, final pass {trim:?})"
    );
    let stats = global::stats();
    let totals = pools::reclaim::totals();
    assert_eq!(stats.reclaimed_slabs, totals.reclaimed_slabs);
    assert_eq!(stats.reclaimed_bytes, totals.reclaimed_bytes);
    assert_eq!(stats.reclaimed_bytes, stats.reclaimed_slabs * 64 * 1024);
}

#[test]
fn exited_threads_fold_their_counters_into_the_snapshot() {
    let _g = ledger_lock();
    let before = global::stats();
    std::thread::spawn(|| {
        for _ in 0..500 {
            let p = global::raw_alloc(BLOCK_LAYOUT);
            assert!(!p.is_null());
            unsafe { global::raw_dealloc(p, BLOCK_LAYOUT) };
        }
    })
    .join()
    .unwrap();
    let after = global::stats();
    // The thread is gone; its 500 pairs must be visible from here.
    assert!(after.class_allocs - before.class_allocs >= 500);
    assert!(after.class_frees - before.class_frees >= 500);
    assert!(after.cache_hits > before.cache_hits, "steady-state loop must hit its cache");
}

/// The acceptance bar: remote-free conservation must survive deterministic
/// fault injection. The injected sites live in the *typed* pool ladder
/// (fresh-alloc failures, depot retries, epoch bumps on trim), so a typed
/// `ShardedPool` churns and trims concurrently with the producer/consumer
/// traffic while a uniform fault schedule is armed — epoch bumps and CAS
/// retries must never leak into the untyped front-end's ledger, and the
/// typed pool itself must stay balanced under the same schedule.
/// Reclaimed-then-recarved slabs must never double-hand-out a block,
/// even with carve faults armed (ISSUE 10). Each round bursts a slab's
/// worth of short-lived blocks and retires them, so later rounds carve
/// from quarantine-recycled memory; the consumer's live-set insert is
/// the detector — a recarve that forgot to reset a freelist, or a
/// retire that raced a fault-diverted carve, hands one address out
/// twice while it is still live and trips the assert.
#[cfg(feature = "fault-inject")]
#[test]
fn recarved_slabs_never_double_hand_out_under_faults() {
    use pools::fault::{self, FaultConfig};

    let _g = ledger_lock();
    fault::clear();
    fault::reset_counts();
    fault::install(FaultConfig::uniform(0x9F00_11AB, 0.05));

    let recarved_before = pools::reclaim::totals().recarved_slabs;
    for round in 0..6u64 {
        // A burst big enough to carve fresh slabs, freed in full so the
        // sweep can retire them; the next round's carves pull those
        // pages back out of quarantine.
        std::thread::spawn(move || {
            fault::set_thread_ordinal(700 + round);
            let mut blocks = Vec::with_capacity(2_048);
            for _ in 0..2_048 {
                let p = global::raw_alloc(BLOCK_LAYOUT);
                assert!(!p.is_null());
                blocks.push(p as usize);
            }
            for addr in blocks {
                unsafe { global::raw_dealloc(addr as *mut u8, BLOCK_LAYOUT) };
            }
        })
        .join()
        .expect("burst thread panicked");
        pools::reclaim::reclaim_all();
        // Integrity probe on the recycled pages: cross-thread traffic
        // with the double-hand-out / id-uniqueness detectors live.
        let (freed, distinct) = producer_consumer_run(2, 2_000);
        assert_eq!(freed, 4_000);
        assert_eq!(distinct, 4_000);
    }
    fault::clear();

    let recarved_after = pools::reclaim::totals().recarved_slabs;
    assert!(
        recarved_after > recarved_before,
        "the rounds never recycled a retired slab ({recarved_before} -> {recarved_after}); \
         the probe proved nothing"
    );
    let after = global::stats();
    assert_eq!(after.remote_frees, after.remote_drained + after.remote_pending);
}

#[cfg(feature = "fault-inject")]
#[test]
fn epoch_bumps_under_fault_injection_do_not_disturb_conservation() {
    use pools::fault::{self, FaultConfig};
    use pools::ShardedPool;
    use std::sync::atomic::{AtomicBool, Ordering};

    let _g = ledger_lock();
    fault::clear();
    fault::reset_counts();
    fault::install(FaultConfig::uniform(0xC0FF_EE00, 0.05));

    let before = global::stats();
    let stop = AtomicBool::new(false);
    let (freed, distinct) = std::thread::scope(|s| {
        let churn = s.spawn(|| {
            fault::set_thread_ordinal(900);
            let pool: ShardedPool<[u8; 64]> = ShardedPool::new(4);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let a = pool.acquire(|| [0u8; 64]);
                let b = pool.acquire(|| [1u8; 64]);
                pool.release(a);
                pool.release(b);
                n += 1;
                if n.is_multiple_of(512) {
                    // Bump the trim epoch: the exact window the injected
                    // epoch-bump site races against.
                    pool.trim();
                }
            }
            pool.trim();
            let stats = pool.stats();
            assert_eq!(
                stats.total_allocs(),
                stats.releases(),
                "typed pool unbalanced under faults"
            );
        });
        let result = producer_consumer_run(3, 4_000);
        stop.store(true, Ordering::Relaxed);
        churn.join().expect("churn thread panicked");
        result
    });
    fault::clear();

    let total = 3 * 4_000;
    assert_eq!(freed, total);
    assert_eq!(distinct, total);
    let after = global::stats();
    let allocs = after.class_allocs - before.class_allocs;
    let frees = after.class_frees - before.class_frees;
    // Injected carve failures divert blocks to the System-chunk fallback,
    // which lives *outside* the classed ledger — conservation holds with
    // the fallback gauges added back in (satellite: fallback exclusion).
    let fb_allocs = after.fallback_allocs - before.fallback_allocs;
    let fb_frees = after.fallback_frees - before.fallback_frees;
    assert_eq!(fb_allocs, fb_frees, "every fallback block was freed at quiesce");
    if global::installed() {
        assert!(allocs + fb_allocs >= total as u64);
        assert!(frees + fb_frees >= total as u64);
    } else {
        assert_eq!(allocs + fb_allocs, total as u64);
        assert_eq!(frees + fb_frees, total as u64);
    }
    assert_eq!(after.remote_frees, after.remote_drained + after.remote_pending);
}
