//! Depot correctness under contention: many threads cycling their
//! magazines through empty → depot-swap → slab-carve transitions, with
//! barrier-phased quiescent points where the conservation invariant
//!
//! `magazine_parked + depot_parked + shard_total == fresh_allocs`
//!
//! must hold exactly (uncapped pool: nothing is ever dropped), and an end
//! drain that proves no object was ever handed out twice.

use pools::{PoolBox, PoolConfig, ShardedPool};
use std::collections::HashSet;
use std::sync::{Arc, Barrier};

/// Acquire-burst / release-burst cycles across threads. Each burst spans
/// several magazines (cap 8, burst 50), so every cycle exercises depot
/// parks on the release side and depot swaps on the acquire side.
#[test]
fn conservation_holds_at_every_quiescent_point() {
    const THREADS: usize = 8;
    const CYCLES: usize = 30;
    const BURST: usize = 50;
    let pool: Arc<ShardedPool<u64>> =
        Arc::new(ShardedPool::with_magazines(4, PoolConfig::default(), 8));
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let p = Arc::clone(&pool);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Disjoint value ranges per thread: every fresh object is
                // globally unique, so duplicates are detectable later.
                let mut counter = (t as u64) << 32;
                for _ in 0..CYCLES {
                    b.wait(); // phase 1: churn
                    let mut held: Vec<PoolBox<u64>> = Vec::with_capacity(BURST);
                    for _ in 0..BURST {
                        counter += 1;
                        let v = counter;
                        held.push(p.acquire(move || v));
                    }
                    for obj in held.drain(..) {
                        p.release(obj);
                    }
                    b.wait(); // phase 2: quiescent, main checks conservation
                    b.wait(); // phase 3: released for the next cycle
                }
            })
        })
        .collect();

    for _ in 0..CYCLES {
        barrier.wait(); // phase 1
        barrier.wait(); // phase 2: every worker parked everything it held
        let stats = pool.stats();
        let shard_total: usize = pool.shard_lengths().iter().sum();
        let parked = pool.magazine_parked() + pool.depot_parked() + shard_total;
        assert_eq!(
            parked as u64,
            stats.fresh_allocs(),
            "each fresh object must sit in exactly one cache level while quiescent \
             (magazines {}, depot {}, shards {})",
            pool.magazine_parked(),
            pool.depot_parked(),
            shard_total,
        );
        assert_eq!(pool.len() as u64, stats.fresh_allocs());
        barrier.wait(); // phase 3
    }
    for h in handles {
        h.join().unwrap();
    }

    // End drain: exited workers flushed their magazines; everything parked
    // must come back exactly once, all values distinct.
    let stats = pool.stats();
    assert!(stats.depot_parks() > 0, "the workload must exercise depot parks");
    assert!(stats.depot_swaps() > 0, "the workload must exercise depot swaps");
    let parked = pool.len();
    assert_eq!(parked as u64, stats.fresh_allocs());
    let mut drained: Vec<PoolBox<u64>> = Vec::with_capacity(parked);
    for _ in 0..parked {
        drained.push(pool.acquire(|| u64::MAX));
    }
    let values: HashSet<u64> = drained.iter().map(|b| **b).collect();
    assert_eq!(values.len(), parked, "an object was handed out twice");
    assert!(!values.contains(&u64::MAX), "drain must be served entirely from caches");
    assert_eq!(pool.stats().fresh_allocs(), stats.fresh_allocs());
    assert_eq!(pool.len(), 0);
}

/// A cold pool goes empty → (depot empty) → slab carve on every magazine's
/// worth of misses; once primed, the same traffic is all depot swaps.
#[test]
fn empty_swap_carve_cycle_single_thread() {
    let pool: ShardedPool<[u8; 64]> = ShardedPool::with_magazines(2, PoolConfig::default(), 8);
    let n = 64;
    let first: Vec<_> = (0..n).map(|i| pool.acquire(move || [i as u8; 64])).collect();
    let stats = pool.stats();
    assert_eq!(stats.fresh_allocs(), n as u64);
    assert!(stats.slab_carves() > 0, "cold misses must carve slabs");
    assert!(
        stats.slab_carves() < n as u64 / 2,
        "one carve must serve many misses (got {} carves for {} misses)",
        stats.slab_carves(),
        n,
    );
    for obj in first {
        pool.release(obj);
    }
    let again: Vec<_> = (0..n).map(|_| pool.acquire(|| [0xFF; 64])).collect();
    let stats = pool.stats();
    assert_eq!(stats.fresh_allocs(), n as u64, "warm traffic is all hits");
    assert!(stats.depot_swaps() > 0, "refills must come from depot swaps");
    assert!(again.iter().all(|b| b[0] != 0xFF));
    drop(again);
}

/// Trim must reclaim depot-parked magazines and keep counters consistent
/// while other threads keep churning.
#[test]
fn trim_reclaims_depot_under_churn() {
    const THREADS: usize = 4;
    let pool: Arc<ShardedPool<u64>> =
        Arc::new(ShardedPool::with_magazines(2, PoolConfig::default(), 8));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let p = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut counter = (t as u64) << 32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let mut held = Vec::with_capacity(24);
                    for _ in 0..24 {
                        counter += 1;
                        let v = counter;
                        held.push(p.acquire(move || v));
                    }
                    for obj in held {
                        p.release(obj);
                    }
                }
            })
        })
        .collect();
    for _ in 0..50 {
        pool.trim();
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Workers exited (magazines flushed); one more trim empties the world.
    pool.trim();
    assert_eq!(pool.len(), 0);
    assert_eq!(pool.depot_parked(), 0);
    assert_eq!(pool.magazine_parked(), 0);
}
