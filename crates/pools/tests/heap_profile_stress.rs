//! Concurrent consistency checks for the heap-profile gauges: under
//! multi-thread churn with cross-thread frees, *every* snapshot must
//! satisfy `live_bytes <= mapped_bytes` per class (the gauge fold
//! protocol's ordering guarantee, DESIGN.md §9), and at quiesce the
//! gauges must reconcile exactly against an alloc/free ledger kept by
//! the test itself.
//!
//! Exact-equality reconciliation only holds feature-off (with
//! `global-alloc` installed the harness's own heap traffic shares the
//! process-wide counters); installed builds assert the same invariants
//! as floors. Tests serialize on one lock: the gauges are process-wide.

use pools::global::{self, CLASS_SHARDS};
use pools::heap_profile as hp;
use std::alloc::Layout;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn ledger_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

const BLOCK_LAYOUT: Layout = match Layout::from_size_align(64, 8) {
    Ok(l) => l,
    Err(_) => panic!("static layout"),
};

/// The 64-byte class's index: gauges report per class, the test allocates
/// one layout, so find where its traffic lands.
fn block_class() -> usize {
    pools::size_class::class_for(64, 8).expect("64B is classed")
}

fn class_live_bytes(g: &hp::HeapGauges, class: usize) -> u64 {
    g.classes[class].live_bytes
}

/// Every-snapshot invariant plus quiesce reconciliation, under the same
/// producer/consumer shape as the front-end stress suite: producers
/// allocate on shards `0..P`, a consumer frees everything remotely, and a
/// dedicated observer thread snapshots the gauges as fast as it can the
/// whole time.
#[test]
fn every_snapshot_bounds_live_by_mapped_and_quiesce_reconciles() {
    let _g = ledger_lock();
    let class = block_class();
    let before = hp::gauges();
    let before_stats = global::stats();

    const PRODUCERS: usize = 4;
    const PER: usize = 15_000;
    const { assert!(PRODUCERS < CLASS_SHARDS) };

    let stop = AtomicBool::new(false);
    let snapshots_taken = AtomicU64::new(0);
    std::thread::scope(|s| {
        // The observer: concurrent gauge collection against live traffic.
        // Any `live > mapped` observation is a fold-ordering bug.
        let observer = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let g = hp::gauges();
                for c in &g.classes {
                    assert!(
                        c.live_bytes <= c.mapped_bytes,
                        "snapshot violates the bound: class {} live {} > mapped {}",
                        c.class,
                        c.live_bytes,
                        c.mapped_bytes
                    );
                    // Peak is a process-lifetime high-water mark while
                    // retirement can pull mapped back down, so the peak
                    // bound is against *historical* mapped — not
                    // observable here. `peak >= live` still must hold.
                    assert!(
                        c.peak_live_bytes >= c.live_bytes,
                        "peak watermark below current live: class {}",
                        c.class
                    );
                }
                hp::capture_snapshot();
                snapshots_taken.fetch_add(1, Ordering::Relaxed);
            }
        });

        let (tx, rx) = mpsc::channel::<usize>();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                assert!(global::pin_home_shard(p));
                for _ in 0..PER {
                    let block = global::raw_alloc(BLOCK_LAYOUT);
                    assert!(!block.is_null());
                    tx.send(block as usize).expect("consumer alive");
                }
            });
        }
        drop(tx);
        let consumer = s.spawn(move || {
            assert!(global::pin_home_shard(CLASS_SHARDS - 1));
            let mut freed = 0usize;
            while let Ok(addr) = rx.recv() {
                unsafe { global::raw_dealloc(addr as *mut u8, BLOCK_LAYOUT) };
                freed += 1;
            }
            freed
        });
        let freed = consumer.join().expect("consumer");
        assert_eq!(freed, PRODUCERS * PER);
        stop.store(true, Ordering::Relaxed);
        observer.join().expect("observer");
    });

    assert!(
        snapshots_taken.load(Ordering::Relaxed) > 0,
        "observer never snapshotted concurrently with the churn"
    );

    // Quiesce: every worker exited (counters folded), every block freed.
    // The gauges must reconcile exactly against the stress ledger.
    let after = hp::gauges();
    let after_stats = global::stats();
    let total = (PRODUCERS * PER) as u64;
    let allocs = after_stats.class_allocs - before_stats.class_allocs;
    let frees = after_stats.class_frees - before_stats.class_frees;
    if global::installed() {
        assert!(allocs >= total);
        assert!(frees >= total);
        // Harness traffic may hold live blocks, but this run's are gone.
        assert!(
            class_live_bytes(&after, class)
                <= class_live_bytes(&before, class) + (allocs - frees) * 64
        );
    } else {
        assert_eq!(allocs, total, "test ledger: allocs");
        assert_eq!(frees, total, "test ledger: frees");
        assert_eq!(
            class_live_bytes(&after, class),
            class_live_bytes(&before, class),
            "live bytes must return to the pre-churn level at quiesce"
        );
    }
    // The run's peak must have registered at least one producer's worth
    // of concurrently-live blocks... conservatively, at least one block.
    assert!(after.classes[class].peak_live_bytes >= 64, "peak watermark never moved");
    assert!(
        after.classes[class].mapped_bytes >= before.classes[class].mapped_bytes,
        "nothing reclaims during this test (the ledger lock serializes the reclaim \
         stress away), so the mapped gauge cannot shrink mid-test"
    );
}

/// Reclaim-under-churn (ISSUE 10): an aggressive reclaimer loops full
/// sweep passes concurrently with producer/consumer churn and a gauge
/// observer. Every snapshot must still bound live by mapped — the
/// retire-gauge lock protocol makes the mapped decrement atomic with
/// respect to a collector's whole fold — and at quiesce the ledger
/// reconciles exactly (feature-off) even though slabs were retired and
/// recarved mid-run.
#[test]
fn snapshots_hold_while_the_reclaimer_sweeps_the_churn() {
    let _g = ledger_lock();
    const CHURN_LAYOUT: Layout = match Layout::from_size_align(96, 8) {
        Ok(l) => l,
        Err(_) => panic!("static layout"),
    };
    let class = pools::size_class::class_for(96, 8).expect("96B is classed");
    let before_stats = global::stats();
    let reclaimed_before = pools::reclaim::totals().reclaimed_slabs;

    const PRODUCERS: usize = 3;
    const PER: usize = 12_000;
    let stop = AtomicBool::new(false);
    let passes = AtomicU64::new(0);
    std::thread::scope(|s| {
        let reclaimer = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                pools::reclaim::reclaim_all();
                passes.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        });
        let observer = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let g = hp::gauges();
                for c in &g.classes {
                    assert!(
                        c.live_bytes <= c.mapped_bytes,
                        "snapshot under reclaim violates the bound: class {} live {} > mapped {}",
                        c.class,
                        c.live_bytes,
                        c.mapped_bytes
                    );
                }
            }
        });
        let (tx, rx) = mpsc::channel::<usize>();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                assert!(global::pin_home_shard(p));
                for _ in 0..PER {
                    let block = global::raw_alloc(CHURN_LAYOUT);
                    assert!(!block.is_null());
                    unsafe { std::ptr::write_bytes(block, 0x5A, 96) };
                    tx.send(block as usize).expect("consumer alive");
                }
            });
        }
        drop(tx);
        let consumer = s.spawn(move || {
            assert!(global::pin_home_shard(CLASS_SHARDS - 1));
            let mut freed = 0usize;
            while let Ok(addr) = rx.recv() {
                unsafe { global::raw_dealloc(addr as *mut u8, CHURN_LAYOUT) };
                freed += 1;
            }
            freed
        });
        let freed = consumer.join().expect("consumer");
        assert_eq!(freed, PRODUCERS * PER);
        stop.store(true, Ordering::Relaxed);
        reclaimer.join().expect("reclaimer");
        observer.join().expect("observer");
    });
    assert!(passes.load(Ordering::Relaxed) > 0, "the reclaimer never got a pass in");

    // Quiesce: exact alloc/free conservation even though the reclaimer
    // retired and recarved slabs in the middle of the churn.
    let after_stats = global::stats();
    let total = (PRODUCERS * PER) as u64;
    let allocs = after_stats.class_allocs - before_stats.class_allocs;
    let frees = after_stats.class_frees - before_stats.class_frees;
    if global::installed() {
        assert!(allocs >= total);
        assert!(frees >= total);
    } else {
        assert_eq!(allocs, total, "retirement must not invent or lose allocs");
        assert_eq!(frees, total, "retirement must not invent or lose frees");
    }

    // A final pass over the now-idle churn trims the class back. The
    // concurrent reclaimer may already have swept the post-quiesce heap
    // clean (its last in-loop pass races the stop flag), so the
    // guarantee is cumulative: across the run plus this trim, at least
    // one slab from the churn was retired.
    let mapped_before_trim = hp::gauges().classes[class].mapped_bytes;
    let trim = pools::reclaim::reclaim_all();
    let reclaimed_after = pools::reclaim::totals().reclaimed_slabs;
    assert!(
        reclaimed_after > reclaimed_before,
        "an idle {}-block churn must leave something to retire \
         ({reclaimed_before} -> {reclaimed_after}, final pass {trim:?})",
        PRODUCERS * PER
    );
    assert!(hp::gauges().classes[class].mapped_bytes <= mapped_before_trim);
}

/// Exact ledger reconciliation with a *held* live set: feature-off, the
/// gauge delta equals the held blocks exactly; installed, it is a floor.
#[test]
fn held_blocks_show_up_in_live_bytes_exactly() {
    let _g = ledger_lock();
    let class = block_class();
    let before = hp::gauges();
    const HELD: usize = 2_048;

    let blocks: Vec<usize> = std::thread::scope(|s| {
        s.spawn(|| {
            (0..HELD)
                .map(|_| {
                    let p = global::raw_alloc(BLOCK_LAYOUT);
                    assert!(!p.is_null());
                    p as usize
                })
                .collect()
        })
        .join()
        .expect("allocator thread")
    });
    // The allocating thread has exited: its counters are folded, so the
    // delta is exact even though the blocks are still live.
    let during = hp::gauges();
    let grew = class_live_bytes(&during, class) - class_live_bytes(&before, class);
    if global::installed() {
        assert!(grew >= (HELD as u64) * 64);
    } else {
        assert_eq!(grew, (HELD as u64) * 64, "held blocks must be exactly visible");
    }
    assert!(during.classes[class].live_bytes <= during.classes[class].mapped_bytes);

    for addr in blocks {
        unsafe { global::raw_dealloc(addr as *mut u8, BLOCK_LAYOUT) };
    }
    let after = hp::gauges();
    if !global::installed() {
        assert_eq!(
            class_live_bytes(&after, class),
            class_live_bytes(&before, class),
            "frees must pull live bytes back down exactly"
        );
    }
}

/// Fault-inject interaction (satellite): injected carve failures divert
/// blocks to the System-chunk fallback, which must be *excluded* from
/// slab occupancy (`live_bytes`/`mapped_bytes`) and counted under the
/// `fallback_bytes` gauge instead — and the reconciliation stays exact.
#[cfg(feature = "fault-inject")]
#[test]
fn fallback_blocks_are_excluded_from_slab_occupancy() {
    use pools::fault::{self, FaultConfig};

    let _g = ledger_lock();
    let class = block_class();
    fault::clear();
    fault::reset_counts();
    // Half of all slab carves fail: a fresh thread carving dozens of
    // slabs is guaranteed fallback traffic under any seed.
    fault::install(FaultConfig::uniform(0xBAD_CA4E, 0.5));

    let before = hp::gauges();
    let before_stats = global::stats();
    const HELD: usize = 60_000; // ~59 slabs of 64B blocks if none failed

    let blocks: Vec<usize> = std::thread::scope(|s| {
        s.spawn(|| {
            fault::set_thread_ordinal(901);
            (0..HELD)
                .map(|_| {
                    let p = global::raw_alloc(BLOCK_LAYOUT);
                    assert!(!p.is_null(), "carve failure must fall back, not fail");
                    p as usize
                })
                .collect()
        })
        .join()
        .expect("allocator thread")
    });
    fault::clear();

    let during = hp::gauges();
    let during_stats = global::stats();
    let fb_blocks = during_stats.fallback_allocs - before_stats.fallback_allocs;
    assert!(fb_blocks > 0, "0.5 carve-failure rate over ~59 carves must inject");
    assert!(fb_blocks < HELD as u64, "not every alloc can be a fallback");

    // Exclusion: live_bytes grew only by the slab-served blocks; the
    // fallback blocks are on the fallback gauge instead.
    let grew = class_live_bytes(&during, class) - class_live_bytes(&before, class);
    let fb_grew = during.classes[class].fallback_bytes - before.classes[class].fallback_bytes;
    if global::installed() {
        assert!(grew >= (HELD as u64 - fb_blocks) * 64);
        assert!(fb_grew >= fb_blocks * 64);
    } else {
        assert_eq!(grew, (HELD as u64 - fb_blocks) * 64, "slab live must exclude fallbacks");
        assert_eq!(fb_grew, fb_blocks * 64, "fallback bytes must cover exactly the diverted");
    }
    assert!(during.classes[class].live_bytes <= during.classes[class].mapped_bytes);

    // Frees route by header magic: slab blocks to their slab, fallback
    // blocks back to System — and both gauges return to baseline.
    for addr in blocks {
        unsafe { global::raw_dealloc(addr as *mut u8, BLOCK_LAYOUT) };
    }
    let after = hp::gauges();
    let after_stats = global::stats();
    assert_eq!(
        after_stats.fallback_allocs - before_stats.fallback_allocs,
        after_stats.fallback_frees - before_stats.fallback_frees,
        "every fallback block freed exactly once"
    );
    if !global::installed() {
        assert_eq!(class_live_bytes(&after, class), class_live_bytes(&before, class));
        assert_eq!(
            after.classes[class].fallback_bytes, before.classes[class].fallback_bytes,
            "outstanding fallback bytes must return to baseline"
        );
    }
}
