//! Property-based tests for the pool runtime invariants.

use pools::{LocalPool, ObjectPool, PoolConfig, ShadowBuf, ShardedPool};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Acquire,
    Release,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(prop_oneof![Just(Op::Acquire), Just(Op::Release)], 1..200)
}

proptest! {
    /// Pool population never exceeds the cap, and alloc/free accounting
    /// balances, for any acquire/release sequence.
    #[test]
    fn object_pool_respects_cap(ops in ops(), cap in 1usize..8) {
        let pool: ObjectPool<u64> =
            ObjectPool::with_config(PoolConfig { max_objects: Some(cap), ..Default::default() });
        let mut held: Vec<pools::PoolBox<u64>> = Vec::new();
        for op in ops {
            match op {
                Op::Acquire => held.push(pool.acquire(|| 0)),
                Op::Release => {
                    if let Some(b) = held.pop() {
                        pool.release(b);
                    }
                }
            }
            prop_assert!(pool.len() <= cap, "pool grew past its cap");
        }
        let s = pool.stats();
        prop_assert_eq!(s.total_allocs() as usize,
                        held.len() + s.releases() as usize + s.dropped() as usize);
    }

    /// LIFO discipline: the most recently released distinct object comes
    /// back first.
    #[test]
    fn object_pool_is_lifo(n in 1usize..20) {
        let pool: ObjectPool<usize> = ObjectPool::new();
        let objs: Vec<pools::PoolBox<usize>> = (0..n).map(|i| pool.acquire(move || i)).collect();
        for o in objs {
            pool.release(o);
        }
        for expected in (0..n).rev() {
            prop_assert_eq!(*pool.acquire(|| usize::MAX), expected);
        }
    }

    /// The shadow buffer's steady-state guarantee: if a request is served
    /// by reuse, the block is at most twice the request (the half-size
    /// rule), and released blocks above the cap are never parked.
    #[test]
    fn shadow_buf_bounds(sizes in proptest::collection::vec(1usize..4096, 1..60),
                         cap in proptest::option::of(64usize..2048)) {
        let mut s = ShadowBuf::with_config(PoolConfig {
            max_shadow_bytes: cap,
            ..Default::default()
        });
        for &size in &sizes {
            let before_hits = s.hits();
            let buf = s.acquire(size);
            prop_assert_eq!(buf.len(), size);
            if s.hits() > before_hits {
                // Reuse happened: the half-size rule bounds slack.
                prop_assert!(buf.capacity() <= 2 * size,
                    "reused {} for request {size}", buf.capacity());
            }
            s.release(buf);
            if let Some(max) = cap {
                prop_assert!(s.parked_capacity() <= max,
                    "parked {} over cap {max}", s.parked_capacity());
            }
        }
    }

    /// Sharded pools conserve objects: everything released can be
    /// re-acquired, nothing is duplicated.
    #[test]
    fn sharded_pool_conserves_objects(shards in 1usize..6, n in 1usize..40) {
        let pool: ShardedPool<usize> = ShardedPool::new(shards);
        let objs: Vec<pools::PoolBox<usize>> = (0..n).map(|i| pool.acquire(move || i)).collect();
        let mut values: Vec<usize> = objs.iter().map(|b| **b).collect();
        for o in objs {
            pool.release(o);
        }
        prop_assert_eq!(pool.len(), n);
        let mut back: Vec<usize> = (0..n).map(|_| *pool.acquire(|| usize::MAX)).collect();
        values.sort();
        back.sort();
        prop_assert_eq!(values, back, "objects lost or duplicated across shards");
    }

    /// LocalPool (lock-elided) matches ObjectPool behaviour for the same
    /// sequence.
    #[test]
    fn local_pool_matches_object_pool(ops in ops()) {
        let a: ObjectPool<u32> = ObjectPool::new();
        let b: LocalPool<u32> = LocalPool::new();
        let mut held_a = Vec::new();
        let mut held_b = Vec::new();
        for op in ops {
            match op {
                Op::Acquire => {
                    held_a.push(a.acquire(|| 7));
                    held_b.push(b.acquire(|| 7));
                }
                Op::Release => {
                    if let Some(x) = held_a.pop() {
                        a.release(x);
                    }
                    if let Some(x) = held_b.pop() {
                        b.release(x);
                    }
                }
            }
            prop_assert_eq!(a.len(), b.len());
        }
        prop_assert_eq!(a.stats().pool_hits(), b.pool_hits());
        prop_assert_eq!(a.stats().fresh_allocs(), b.fresh_allocs());
    }
}
