//! Multi-thread stress tests for the magazine fast path: no object is ever
//! lost or duplicated across magazine refills, overflow flushes,
//! thread-exit flushes and concurrent trims, and the hit/fresh accounting
//! stays exact.

use pools::{PoolConfig, ShardedPool};
use std::collections::HashSet;
use std::sync::Arc;

/// Deterministic per-thread op stream (xorshift) — no external RNG needed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Churn the pool from `threads` threads with a mixed acquire/hold/release
/// pattern; returns (total acquires, values issued by fresh closures).
fn churn(pool: &Arc<ShardedPool<u64>>, threads: u64, ops: u32) -> u64 {
    let mut total_acquires = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let p = Arc::clone(pool);
                s.spawn(move || {
                    let mut rng = Lcg(t * 2 + 1);
                    let mut held: Vec<pools::PoolBox<u64>> = Vec::new();
                    let mut counter = 0u64;
                    let mut acquires = 0u64;
                    for _ in 0..ops {
                        // Bias towards acquire so the held set grows and
                        // shrinks, exercising refill and overflow paths.
                        if !rng.next().is_multiple_of(3) || held.is_empty() {
                            let value = (t << 32) | counter;
                            counter += 1;
                            held.push(p.acquire(move || value));
                            acquires += 1;
                        } else {
                            let idx = (rng.next() as usize) % held.len();
                            p.release(held.swap_remove(idx));
                        }
                    }
                    for obj in held {
                        p.release(obj);
                    }
                    acquires
                })
            })
            .collect();
        for h in handles {
            total_acquires += h.join().expect("stress worker panicked");
        }
    });
    total_acquires
}

#[test]
fn no_object_lost_or_duplicated_under_churn() {
    let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(4));
    let acquires = churn(&pool, 8, 3_000);

    let stats = pool.stats();
    assert_eq!(
        stats.pool_hits() + stats.fresh_allocs(),
        acquires,
        "every acquire is exactly one hit or one fresh alloc"
    );
    // Everything was released and every worker thread has exited (its
    // magazine flushed), so the pool holds every object ever created.
    assert_eq!(pool.len() as u64, stats.fresh_allocs());

    // Drain the pool and check for duplication: each fresh value is unique,
    // so seeing a value twice would mean an object was double-parked.
    let mut seen = HashSet::new();
    for _ in 0..pool.len() {
        let obj = pool.acquire(|| u64::MAX);
        assert_ne!(*obj, u64::MAX, "drain must not run dry early");
        assert!(seen.insert(*obj), "object {:#x} served twice", *obj);
    }
    assert_eq!(seen.len() as u64, stats.fresh_allocs());
}

#[test]
fn concurrent_trims_keep_accounting_exact() {
    let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::new(2));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let trimmer = {
        let p = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut trimmed = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                trimmed += p.trim();
                std::thread::yield_now();
            }
            trimmed
        })
    };
    let acquires = churn(&pool, 4, 2_000);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let trimmed = trimmer.join().expect("trimmer panicked");

    let stats = pool.stats();
    assert_eq!(
        stats.pool_hits() + stats.fresh_allocs(),
        acquires,
        "trims must not break per-acquire accounting"
    );
    // Every object created is accounted for: reclaimed by some trim, or
    // still parked now that all churn threads have exited and flushed.
    // (Stale-epoch drops happen on the owning thread, reducing len there.)
    let _ = trimmed;
    // A final trim from this thread reclaims whatever is left.
    pool.trim();
    assert_eq!(pool.len(), 0);
}

#[test]
fn capped_shards_drop_overflow_but_never_duplicate() {
    let pool: Arc<ShardedPool<u64>> = Arc::new(ShardedPool::with_magazines(
        2,
        PoolConfig { max_objects: Some(8), ..Default::default() },
        4,
    ));
    churn(&pool, 4, 1_000);
    let stats = pool.stats();
    // Shards cap at 8 each; magazines are gone (threads exited).
    assert!(pool.len() <= 2 * 8, "cap must bound residency, len={}", pool.len());
    assert!(stats.dropped() > 0, "the cap must have dropped overflow");
    let mut seen = HashSet::new();
    let n = pool.len();
    for _ in 0..n {
        let obj = pool.acquire(|| u64::MAX);
        assert_ne!(*obj, u64::MAX);
        assert!(seen.insert(*obj), "object {:#x} served twice", *obj);
    }
}
