//! Depot correctness under *injected* fault schedules (`fault-inject`).
//!
//! The plain `depot_stress` suite relies on the scheduler to produce the
//! interesting interleavings; here the fault layer forces them: every depot
//! swap risks a forced CAS retry (the ABA window) and an epoch bump landing
//! exactly between the pop and the validate — the trim-vs-swap race a
//! version-tagged Treiber stack must win — while allocation failures check
//! the graceful-degradation ladder end to end.
//!
//! Lives in its own test binary: the fault configuration is process-global,
//! and cargo runs test binaries one at a time, so schedules installed here
//! cannot leak into the rest of the suite. Within the binary a mutex
//! serializes the tests.

#![cfg(feature = "fault-inject")]

use pools::fault::{self, FaultConfig};
use pools::{PoolBox, PoolConfig, ShardedPool};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// The fault configuration is global: one test drives it at a time.
static FAULTS: Mutex<()> = Mutex::new(());

/// An injected epoch bump between `pop_full` and the node-epoch validate —
/// plus forced CAS retries and delayed flushes, under concurrent trims —
/// must never let a trimmed (stale) magazine serve objects, and must never
/// hand the same object to two owners.
#[test]
fn injected_epoch_bump_between_pop_and_validate_cannot_double_hand_out() {
    let _serialize = FAULTS.lock().unwrap();
    const THREADS: usize = 4;
    const CYCLES: usize = 20;
    const BURST: usize = 40;
    fault::reset_counts();
    fault::install(FaultConfig {
        seed: 0xDEAD_BEEF,
        fail_fresh: 0.0,
        fail_carve: 0.0,
        depot_retry: 0.3,
        epoch_bump: 0.3,
        flush_delay: 0.1,
    });
    let pool: Arc<ShardedPool<u64>> =
        Arc::new(ShardedPool::with_magazines(2, PoolConfig::default(), 8));
    let barrier = Arc::new(Barrier::new(THREADS));
    let stop = Arc::new(AtomicBool::new(false));
    let trimmer = {
        let p = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                p.trim();
                std::thread::yield_now();
            }
        })
    };
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let p = Arc::clone(&pool);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                fault::set_thread_ordinal(t as u64);
                b.wait();
                // Disjoint value ranges: every fresh object is globally
                // unique, so a double handout is detectable by value.
                let mut counter = (t as u64) << 32;
                for _ in 0..CYCLES {
                    let mut held: Vec<PoolBox<u64>> = Vec::with_capacity(BURST);
                    for _ in 0..BURST {
                        counter += 1;
                        let v = counter;
                        held.push(p.acquire(move || v));
                    }
                    let distinct: HashSet<u64> = held.iter().map(|b| **b).collect();
                    assert_eq!(distinct.len(), held.len(), "object handed out twice in a burst");
                    for obj in held {
                        p.release(obj);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    trimmer.join().unwrap();

    let injected = fault::injected_counts();
    assert!(injected.epoch_bump > 0, "the schedule must hit the pop/validate window");
    assert!(injected.depot_retry > 0, "the schedule must force CAS retries");
    fault::clear();

    // End drain, fault-free: if a trimmed magazine was ever served after
    // its epoch moved, or an object reached two owners, the same value
    // comes back twice here (a double release makes both copies parkable).
    let parked = pool.len();
    let mut drained: Vec<PoolBox<u64>> = Vec::with_capacity(parked);
    for _ in 0..parked {
        drained.push(pool.acquire(|| u64::MAX));
    }
    let values: HashSet<u64> = drained.iter().map(|b| **b).collect();
    assert_eq!(values.len(), parked, "an object was handed out twice");
    assert!(!values.contains(&u64::MAX), "drain must be served entirely from caches");
}

/// Injected allocation failures (fresh and slab-carve) must degrade to a
/// plain heap `Box` — counted as fresh + fallback, never a panic — and the
/// `hits + fresh == allocs` identity must survive any schedule.
#[test]
fn injected_allocation_failure_degrades_to_heap_without_panics() {
    let _serialize = FAULTS.lock().unwrap();
    fault::reset_counts();
    fault::install(FaultConfig::uniform(42, 0.15));
    fault::set_thread_ordinal(0);
    let pool: ShardedPool<u64> = ShardedPool::with_magazines(2, PoolConfig::default(), 8);
    let mut held = Vec::new();
    for cycle in 0..30u64 {
        for i in 0..40u64 {
            held.push(pool.acquire(move || cycle * 100 + i));
        }
        for obj in held.drain(..) {
            pool.release(obj);
        }
    }
    let stats = pool.stats();
    let injected = fault::injected_counts();
    fault::clear();
    assert_eq!(stats.total_allocs(), 30 * 40, "hits + fresh == allocs under faults");
    assert!(stats.fallback_allocs() > 0, "the schedule must inject some failures");
    assert!(stats.fallback_allocs() <= stats.fresh_allocs(), "fallbacks are a subset of fresh");
    assert_eq!(
        stats.fallback_allocs(),
        injected.fail_fresh,
        "every injected alloc failure must surface as exactly one fallback"
    );
    assert!(injected.fail_carve > 0, "carve failures must occur and fall through to plain boxes");
}
