//! Quickstart: the three layers of the Amplify reproduction in one file.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use amplify::{Amplifier, AmplifyOptions};
use pools::{ObjectPool, ShadowBuf, StructurePool};
use smp_sim::run::{run_tree, ModelKind, TreeExperiment};
use workloads::tree::{PoolTree, TreeParams};

fn main() {
    // 1. The pool runtime: object pools and whole-structure reuse.
    let pool: ObjectPool<Vec<u8>> = ObjectPool::new();
    let buf = pool.acquire(|| vec![0u8; 256]);
    pool.release(buf);
    let _again = pool.acquire(|| vec![0u8; 256]); // reuses the allocation
    println!(
        "object pool: {} hit(s), {} fresh alloc(s)",
        pool.stats().pool_hits(),
        pool.stats().fresh_allocs()
    );

    let trees: StructurePool<PoolTree> = StructurePool::new();
    let t = trees.alloc(&TreeParams { depth: 3, seed: 7 });
    let root_addr = t.root().addr();
    trees.free(t);
    let t2 = trees.alloc(&TreeParams { depth: 3, seed: 8 });
    println!(
        "structure pool: 15-node tree revived in one operation, root address unchanged: {}",
        t2.root().addr() == root_addr
    );

    let mut shadow = ShadowBuf::new();
    let b = shadow.acquire(800);
    shadow.release(b);
    let _b2 = shadow.acquire(750); // within the half-size window → reuse
    println!("shadowed array: {} hit(s), {} miss(es)", shadow.hits(), shadow.misses());

    // 2. The pre-processor: rewrite C++ to use the pools automatically.
    let cpp = r#"
class Engine { public: Engine(int p) { power = p; } int power; };
class Car {
public:
    Car() { engine = 0; }
    ~Car() { delete engine; }
    void rebuild(int p) { delete engine; engine = new Engine(p); }
private:
    Engine* engine;
};
"#;
    let amp = Amplifier::new(AmplifyOptions::default());
    let out = amp.amplify_source("car.cpp", cpp);
    println!("\npre-processor: {}", out.report.summary());
    for line in out.text.lines().filter(|l| l.contains("Shadow") || l.contains("amplify::")) {
        println!("    {}", line.trim());
    }

    // 3. The simulated SMP: why this wins on a multiprocessor.
    let exp = TreeExperiment {
        depth: 3,
        total_trees: 2_000,
        cpus: 8,
        params: smp_sim::CostParams::default(),
    };
    let serial = run_tree(ModelKind::Serial, 8, &exp);
    let amplified = run_tree(ModelKind::Amplify, 8, &exp);
    println!(
        "\nsimulated 8-CPU SMP, 8 threads: serial malloc {:.2} ms vs amplify {:.2} ms ({:.1}x)",
        serial.wall_ns as f64 / 1e6,
        amplified.wall_ns as f64 / 1e6,
        serial.wall_ns as f64 / amplified.wall_ns as f64
    );
}
