//! Reproduce the core of Figures 4–10 interactively: speedup of each
//! memory-management strategy on the simulated 8-CPU SMP.
//!
//! ```text
//! cargo run --release --example speedup_sim [depth] [total_trees]
//! ```

use smp_sim::params::CostParams;
use smp_sim::run::{baseline_wall_ns, run_tree, ModelKind, TreeExperiment};

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let total_trees: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_000);

    let exp = TreeExperiment { depth, total_trees, cpus: 8, params: CostParams::default() };
    let base = baseline_wall_ns(&exp);
    let threads = [1usize, 2, 4, 6, 8, 12, 16];

    println!(
        "Binary trees of depth {depth} ({} nodes each), {total_trees} trees total, 8 CPUs.",
        (1u32 << (depth + 1)) - 1
    );
    println!(
        "Speedup vs 1-thread Solaris-default malloc (baseline {:.2} ms):\n",
        base as f64 / 1e6
    );

    print!("{:<18}", "threads");
    for t in threads {
        print!("{t:>8}");
    }
    println!();
    for kind in [
        ModelKind::Serial,
        ModelKind::Ptmalloc,
        ModelKind::Hoard,
        ModelKind::Amplify,
        ModelKind::Handmade,
    ] {
        print!("{:<18}", kind.name());
        for t in threads {
            let m = run_tree(kind, t, &exp);
            print!("{:>8.2}", base as f64 / m.wall_ns as f64);
        }
        println!();
    }
    println!("\n(Each line regenerates one curve of Figures 4/5/6 and 10.)");
}
