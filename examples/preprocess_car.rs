//! Pre-process the bundled `car.cpp` fixture and show the full rewritten
//! translation unit, the transformation report, and the structure-size
//! estimates derived from the class-composition graph.
//!
//! ```text
//! cargo run --example preprocess_car
//! ```

use amplify::analysis::analyze;
use amplify::model::estimate_structures;
use amplify::{Amplifier, AmplifyOptions};
use cxx_frontend::parse_source;
use std::path::Path;

fn main() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/amplify/testdata/car.cpp");
    let src = std::fs::read_to_string(&path).expect("bundled fixture");

    let options = AmplifyOptions::default();
    let amp = Amplifier::new(options.clone());
    let out = amp.amplify_source("car.cpp", &src);

    println!("==== rewritten car.cpp ====");
    println!("{}", out.text);
    println!("==== report ====");
    println!("{}", out.report.summary());

    let unit = parse_source("car.cpp", &src);
    let analysis = analyze(&unit, &options);
    println!("\n==== structure estimates (allocations per logical object) ====");
    for est in estimate_structures(&analysis) {
        println!(
            "  {:<10} {} allocation(s){}",
            est.class,
            est.allocations,
            if est.cyclic { " (recursive)" } else { "" }
        );
    }
    println!(
        "\nThe generated runtime header is {} bytes; write it with amplify-cli.",
        amp.runtime_header().len()
    );
}
