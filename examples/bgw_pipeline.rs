//! The Billing-Gateway scenario (§5.2): process a stream of call-data
//! records with and without shadowed work buffers, and reproduce the
//! Figure 11 comparison on the simulated SMP.
//!
//! ```text
//! cargo run --release --example bgw_pipeline
//! ```

use pools::PoolConfig;
use smp_sim::run::{run_bgw, ModelKind};
use std::time::Instant;
use workloads::bgw::{BgwPipeline, CdrGenerator};

fn main() {
    let cdrs = 20_000;

    // Native execution: the same records through both pipeline variants.
    for (label, shadowing) in [("fresh buffers ", false), ("shadowed (§5.2)", true)] {
        let mut gen = CdrGenerator::new(2001);
        let mut pipeline = BgwPipeline::new(shadowing, PoolConfig::bgw(256, 64 * 1024));
        let start = Instant::now();
        let mut digest = 0u64;
        for _ in 0..cdrs {
            let cdr = gen.next_cdr();
            digest = digest.wrapping_add(pipeline.process(&cdr));
        }
        let stats = pipeline.stats();
        println!(
            "{label}: {cdrs} CDRs in {:>8.2?}  digest={digest:016x}  \
             buffer hits={} misses={}",
            start.elapsed(),
            stats.shadow_hits,
            stats.shadow_misses
        );
    }

    // Simulated 8-CPU SMP: the Figure 11 configurations.
    println!("\nSimulated BGw on 8 CPUs (5,000 CDRs), speedup vs 1-thread serial:");
    let base = run_bgw(ModelKind::Serial, 1, 5_000, 8).wall_ns;
    for kind in [ModelKind::SmartHeap, ModelKind::Amplify, ModelKind::AmplifyOverSmartHeap] {
        print!("  {:<18}", kind.name());
        for t in [1usize, 2, 4, 8] {
            let m = run_bgw(kind, t, 5_000, 8);
            print!("  {}t={:5.2}", t, base as f64 / m.wall_ns as f64);
        }
        println!();
    }
    let sh = run_bgw(ModelKind::SmartHeap, 8, 5_000, 8).wall_ns;
    let combo = run_bgw(ModelKind::AmplifyOverSmartHeap, 8, 5_000, 8).wall_ns;
    println!(
        "  → Amplify on top of SmartHeap: {:+.1}% CDR throughput (paper: +17%)",
        (sh as f64 / combo as f64 - 1.0) * 100.0
    );
}
