//! A long-running-server scenario: worker threads process bursts of
//! requests through sharded structure pools and shadowed buffers, while
//! the pool registry reports fleet-wide statistics and trims parked memory
//! between load phases — the §5.1 "returning memory from the pools to the
//! operating system on demand".
//!
//! ```text
//! cargo run --release --example server_pools
//! ```

use pools::structure_pool::Reusable;
use pools::{PoolConfig, PoolRegistry, ShadowBuf, ShardedPool, StructurePool};
use std::sync::Arc;
use std::time::Instant;
use workloads::bgw::{BgwPipeline, CdrGenerator};
use workloads::tree::{PoolTree, TreeParams};

const WORKERS: u32 = 4;
const BURSTS: u32 = 3;
const REQUESTS_PER_BURST: u32 = 5_000;

fn main() {
    let registry = PoolRegistry::new();

    // Per-request object structures: a sharded pool (one shard per worker).
    let sessions: Arc<ShardedPool<PoolTree>> = Arc::new(ShardedPool::with_config(
        WORKERS as usize,
        PoolConfig { max_objects: Some(64), ..Default::default() },
    ));
    registry.register("session-structures", &sessions);

    // A second pool for small reply objects, shared LIFO.
    let replies: Arc<StructurePool<PoolTree>> = Arc::new(StructurePool::new());
    registry.register("reply-structures", &replies);

    for burst in 1..=BURSTS {
        let start = Instant::now();
        std::thread::scope(|s| {
            for worker in 0..WORKERS {
                let sessions = Arc::clone(&sessions);
                let replies = Arc::clone(&replies);
                s.spawn(move || {
                    // Each worker also keeps a shadowed scratch buffer and a
                    // small CDR pipeline (thread-local, lock-free).
                    let mut scratch = ShadowBuf::with_config(PoolConfig::bgw(8, 16 * 1024));
                    let mut pipeline = BgwPipeline::new(true, PoolConfig::bgw(8, 16 * 1024));
                    let mut gen = CdrGenerator::new(worker as u64);
                    let mut digest = 0u64;
                    for i in 0..REQUESTS_PER_BURST {
                        // "Parse" a request record.
                        let cdr = gen.next_cdr();
                        digest = digest.wrapping_add(pipeline.process(&cdr));
                        // Session state: a small structure from the shard.
                        let params = TreeParams { depth: 2, seed: worker * 100_000 + i };
                        let mut session = sessions.acquire(|| PoolTree::fresh(&params));
                        session.reinit(&params);
                        digest = digest.wrapping_add(session.checksum());
                        // A reply object.
                        let reply = replies.alloc(&TreeParams { depth: 1, seed: i });
                        digest = digest.wrapping_add(reply.checksum());
                        replies.free(reply);
                        // Scratch buffer with wobbling size.
                        let buf = scratch.acquire(512 + (i as usize * 7) % 128);
                        digest = digest.wrapping_add(buf.len() as u64);
                        scratch.release(buf);
                        session.recycle();
                        sessions.release(session);
                    }
                    digest
                });
            }
        });

        let elapsed = start.elapsed();
        println!(
            "burst {burst}: {} requests on {WORKERS} workers in {elapsed:?}",
            WORKERS * REQUESTS_PER_BURST
        );
        for line in registry.report() {
            println!("    {line}");
        }
        let agg = registry.aggregate_stats();
        println!(
            "    fleet: hit rate {:.1}%  parked {}  dropped {}",
            100.0 * agg.pool_hits() as f64 / (agg.pool_hits() + agg.fresh_allocs()).max(1) as f64,
            registry.total_parked(),
            agg.dropped()
        );

        // Quiet period between bursts: return parked memory on demand.
        let trimmed = registry.trim_all();
        println!("    idle trim released {trimmed} structures\n");
    }
}
