//! Umbrella crate for the Amplify reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`). The actual functionality lives
//! in the member crates:
//!
//! * [`cxx_frontend`] — fault-tolerant C++-subset front end (lexer, parser,
//!   AST, span-based rewriter).
//! * [`amplify`] — the paper's contribution: the Amplify pre-processor that
//!   rewrites C++ to use automatically generated structure pools.
//! * [`pools`] — structure-pool runtime (object pools, structure pools,
//!   shadow pointers, shadowed realloc buffers, sharded pools).
//! * [`allocators`] — executable baseline allocators (serial global-lock
//!   heap, ptmalloc-like multi-arena, Hoard-like per-CPU heaps).
//! * [`smp_sim`] — deterministic discrete-event SMP simulator used to
//!   regenerate the paper's 8-processor speedup/scaleup figures.
//! * [`workloads`] — binary-tree and Billing-Gateway (CDR) workload
//!   generators and trace execution.

pub use allocators;
pub use amplify;
pub use cxx_frontend;
pub use pools;
pub use smp_sim;
pub use workloads;
