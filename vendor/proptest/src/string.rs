//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the patterns the workspace's tests use: literal characters,
//! `.` (any char except newline), `[a-z0-9]`-style classes, and the
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.

use crate::runner::TestRng;
use rand::Rng as _;

enum Atom {
    /// `.` — any char except `\n`.
    Any,
    /// `[...]` — union of inclusive char ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = if p.min == p.max { p.min } else { rng.gen_range(p.min..=p.max) };
        for _ in 0..n {
            out.push(gen_char(&p.atom, rng));
        }
    }
    out
}

// Mostly printable ASCII, occasionally multi-byte, so span/byte-offset code
// sees non-trivial UTF-8 without drowning the parsers in exotic input.
const EXOTIC: &[char] = &['é', 'λ', '中', '€', 'ß', '\u{00a0}'];

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Any => {
            if rng.gen_range(0..10u32) == 0 {
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                char::from(rng.gen_range(0x20u8..0x7f))
            }
        }
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
            let mut idx = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if idx < span {
                    return char::from_u32(lo as u32 + idx).expect("class range scalar");
                }
                idx -= span;
            }
            unreachable!("class pick out of range")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("escape in class"),
                        Some(ch) => ch,
                        None => panic!("unterminated class in pattern `{pattern}`"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some(']') | None => panic!("bad range in pattern `{pattern}`"),
                            Some('\\') => chars.next().expect("escape in class"),
                            Some(ch) => ch,
                        };
                        assert!(lo <= hi, "inverted range in pattern `{pattern}`");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(chars.next().expect("trailing escape")),
            other => Atom::Lit(other),
        };
        // Quantifier?
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut first = String::new();
                while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                    first.push(chars.next().unwrap());
                }
                let min: usize = first.parse().expect("quantifier min");
                let max = match chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut second = String::new();
                        while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                            second.push(chars.next().unwrap());
                        }
                        assert_eq!(chars.next(), Some('}'), "unterminated quantifier");
                        second.parse().expect("quantifier max")
                    }
                    _ => panic!("bad quantifier in pattern `{pattern}`"),
                };
                assert!(min <= max, "inverted quantifier in `{pattern}`");
                (min, max)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_for;

    #[test]
    fn fixed_count_class() {
        let mut rng = rng_for(11);
        for _ in 0..50 {
            let s = generate("[a-z]{20,80}", &mut rng);
            assert!((20..=80).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ident_shape() {
        let mut rng = rng_for(12);
        for _ in 0..50 {
            let s = generate("[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn dot_excludes_newline_and_bounds_hold() {
        let mut rng = rng_for(13);
        for _ in 0..20 {
            let s = generate(".{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = rng_for(14);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
