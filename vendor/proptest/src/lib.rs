//! Offline drop-in subset of `proptest`.
//!
//! Implements the strategy combinators, collection/option/string strategies
//! and the `proptest!`/`prop_assert*!`/`prop_oneof!` macros the workspace's
//! property tests use. Differences from real proptest, acceptable for this
//! repo's deterministic CI use:
//!
//! * no shrinking — a failing case reports its inputs (via `Debug` in the
//!   assertion message) but is not minimized;
//! * deterministic seeding — each `(test name, case index)` pair maps to a
//!   fixed RNG seed, so runs are reproducible without a persistence file;
//! * string strategies support the regex subset the tests use
//!   (`.`, `[a-z0-9]` classes, literals, `{m,n}`/`{m}`/`?`/`*`/`+`).

pub mod collection;
pub mod option;
pub mod runner;
pub mod strategy;
pub mod string;

/// Everything the tests import.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One generated test case failed; carries the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run `cases` deterministic cases of one property. Panics (failing the
/// surrounding `#[test]`) on the first case that returns `Err`.
///
/// Used by the `proptest!` macro; not part of the public proptest API.
pub fn __run_cases(
    config: &runner::ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut runner::TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        let seed = runner::case_seed(test_name, i);
        let mut rng = runner::rng_for(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest: property `{test_name}` failed at case {i}/{} (seed {seed:#x}):\n{e}",
                config.cases
            );
        }
    }
}

/// `proptest! { ... }` — runs each contained `#[test]` fn over generated
/// inputs. Supports an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::__run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), left
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}` at {}:{}: {}\n  both: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), left
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` / `prop_oneof![w1 => s1, w2 => s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
