//! Collection strategies: `vec` and `btree_set`.

use crate::runner::TestRng;
use crate::strategy::Strategy;
use rand::Rng as _;
use std::collections::BTreeSet;

/// Collection size specification; built from `usize` or `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum size.
    pub min: usize,
    /// Exclusive maximum size.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::btree_set(element, size)`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; bound the attempts so a small value
        // domain cannot loop forever, then accept what was collected
        // (matching proptest, where duplicate inserts also shrink sets).
        for _ in 0..(target * 20 + 20) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_for;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(0u32..5, 2..6);
        let mut rng = rng_for(1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_hits_target_when_domain_allows() {
        let s = btree_set(0usize..1000, 3..4);
        let mut rng = rng_for(2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 3);
        }
    }
}
