//! `proptest::option::of` — optional values.

use crate::runner::TestRng;
use crate::strategy::Strategy;
use rand::Rng as _;

/// `Some` three times out of four (mirroring proptest's default weighting),
/// `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_for;

    #[test]
    fn produces_both_variants() {
        let s = of(0u32..10);
        let mut rng = rng_for(5);
        let values: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}
