//! The [`Strategy`] trait and core combinators.

use crate::runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; regenerates on rejection.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Forward through references, so strategies can be generated from without
/// being consumed.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: 1000 consecutive rejections", self.reason);
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut r = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if r < *w {
                return s.generate(rng);
            }
            r -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Integer/bool range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Sample uniformly over the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T`: `any::<usize>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String-pattern strategies: `"[a-z]{1,8}" `, `".{0,400}"`, ...
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::rng_for;

    #[test]
    fn union_respects_weights_roughly() {
        let u = crate::prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = rng_for(3);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    #[test]
    fn filter_and_map_compose() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        let mut rng = rng_for(4);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 1);
        }
    }
}
