//! Deterministic case runner: config + per-case RNG seeding.

use rand::SeedableRng;

/// The RNG handed to strategies. A deterministic xoshiro-based generator
/// (from the vendored `rand`), seeded per `(test, case)`.
pub type TestRng = rand::rngs::StdRng;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps the suite fast on small
        // CI machines while still exercising the properties.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic seed for one case: FNV-1a over the test name, mixed with
/// the case index. Reproducible across runs and platforms.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Build the RNG for a seed (convenience over the `SeedableRng` import).
pub fn rng_for(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}
