//! Offline drop-in subset of `serde`.
//!
//! The real serde's visitor machinery is far more than this workspace
//! needs; every serialized type here round-trips through JSON. So this
//! stub models serialization as conversion to/from a [`Value`] tree
//! (which `serde_json` renders and parses). The `derive` feature
//! re-exports `serde_derive`'s `Serialize`/`Deserialize` macros, which
//! generate `to_value`/`from_value` implementations for named-field
//! structs and unit/struct-variant enums — exactly the shapes the
//! workspace derives on.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed/printable JSON-like value tree.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Value {
    /// Object field lookup, erroring with the field name when missing.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Interpret as an externally-tagged enum variant: a bare string
    /// (unit variant) yields `(name, None)`; a single-key object yields
    /// `(tag, Some(payload))`.
    pub fn as_variant(&self) -> Result<(&str, Option<&Value>), Error> {
        match self {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error::msg(format!("expected enum variant, got {}", other.kind()))),
        }
    }

    /// Short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view (for cross-width integer/float comparisons).
    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(u)
                    .map_err(|_| Error::msg(format!("integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i: i64 = match *v {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::msg("integer out of i64 range"))?,
                    Value::Int(i) => i,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(i)
                    .map_err(|_| Error::msg(format!("integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-tuple, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let x: Option<usize> = Some(7);
        assert_eq!(Option::<usize>::from_value(&x.to_value()).unwrap(), Some(7));
        let n: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&n.to_value()).unwrap(), None);
        let v = vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        let back: Vec<(String, u64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("n".into(), Value::UInt(2))]);
        assert_eq!(v["n"], 2);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn signed_integers_round_trip() {
        for i in [-5i64, 0, 5] {
            let back = i64::from_value(&i.to_value()).unwrap();
            assert_eq!(back, i);
        }
    }
}
