//! Offline drop-in subset of the `bytes` crate.
//!
//! Implements the slice-building surface the workloads use: `BytesMut`
//! with `BufMut` put-methods and `freeze()` into a cheaply-cloneable
//! [`Bytes`] (an `Arc<[u8]>` under the hood).

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait, mirroring the subset of `bytes::BufMut` in use.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_u32(0x0A0B_0C0D);
        b.put_u8(0xFF);
        assert_eq!(b.len(), 13);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(frozen[0], 0x01);
        assert_eq!(frozen[12], 0xFF);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }
}
