//! Offline drop-in subset of `criterion`.
//!
//! Implements the benchmark-definition surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) over a simple
//! median-of-samples wall-clock measurement.
//!
//! Mode selection matches real criterion: `cargo bench` passes `--bench`
//! to the binary, enabling measurement; under `cargo test` (no `--bench`,
//! or an explicit `--test`) each benchmark body runs once as a smoke test.
//!
//! Extension for machine-readable perf tracking: when the environment
//! variable `CRITERION_OUTPUT_JSON` names a file, measured results are
//! appended to it as JSON lines `{"id": ..., "ns_per_iter": ...}`.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    measure: bool,
    filter: Option<String>,
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Read mode and filter from the command line (see module docs).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut explicit_test = false;
        for a in &args {
            match a.as_str() {
                "--bench" => self.measure = true,
                "--test" => explicit_test = true,
                s if s.starts_with('-') => {} // harness flags we don't model
                s => self.filter = Some(s.to_string()),
            }
        }
        if explicit_test {
            self.measure = false;
        }
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: 15 }
    }

    /// Top-level single benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, 15, f);
        self
    }

    fn run_one<F>(&mut self, full_id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { measure: self.measure, sample_size, ns_per_iter: 0.0 };
        f(&mut b);
        if self.measure {
            println!("{full_id:<50} {:>12.1} ns/iter", b.ns_per_iter);
            self.results.push((full_id.to_string(), b.ns_per_iter));
        } else {
            println!("{full_id}: ok (test mode)");
        }
    }

    /// Write accumulated results if `CRITERION_OUTPUT_JSON` is set.
    pub fn final_summary(&mut self) {
        let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") else {
            return;
        };
        if self.results.is_empty() {
            return;
        }
        let mut out = String::new();
        for (id, ns) in &self.results {
            let escaped: String = id
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c => vec![c],
                })
                .collect();
            out.push_str(&format!("{{\"id\": \"{escaped}\", \"ns_per_iter\": {ns:.2}}}\n"));
        }
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = file.write_all(out.as_bytes());
        }
        self.results.clear();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(3, 200);
        self
    }

    /// Declare the per-iteration workload volume (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`: median over `sample_size` samples of an adaptively
    /// sized batch. In test mode, runs `f` once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            std::hint::black_box(f());
            return;
        }
        // Warm up & estimate per-iter cost.
        let warmup = Duration::from_millis(10);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            iters += 1;
        }
        let est_ns = (warmup.as_nanos() as f64 / iters.max(1) as f64).max(0.5);
        // Aim for ~3ms batches.
        let batch = ((3_000_000.0 / est_ns) as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Composite benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Things usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Workload volume declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export used by some criterion setups.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default(); // measure = false
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("a", 7).into_benchmark_id(), "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
