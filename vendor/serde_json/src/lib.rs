//! Offline drop-in subset of `serde_json`: renders and parses the vendored
//! `serde::Value` tree as JSON. Supports `to_string`, `to_string_pretty`,
//! `from_str`, `from_slice`, and re-exports [`Value`]/[`Error`].

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 yields the shortest round-trippable decimal;
                // force a trailing `.0` on integral values so the number
                // parses back as a float.
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\" str\n".into())),
            ("count".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-7)),
            ("ratio".into(), Value::Float(2.5)),
            ("whole".into(), Value::Float(2.0)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            ("items".into(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v, "render was: {render}");
        }
    }

    #[test]
    fn pretty_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
