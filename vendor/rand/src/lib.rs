//! Offline drop-in subset of the `rand` API.
//!
//! Provides `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over the integer range types the workspace uses.
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! across platforms, which is all the workloads need (they seed every
//! run explicitly for reproducibility).

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample helpers, mirroring the subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample a value of type `T` (bool or any integer).
    fn gen<T: SampleAll>(&mut self) -> T {
        T::sample_all(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Raw 64-bit output, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, per the xoshiro authors'
            // recommended seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`; caller guarantees `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Largest value of the type (for inclusive ranges).
    fn max_value() -> Self;
    /// Successor, saturating at max (to map `a..=b` onto `a..b+1`).
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high);
                let span = (high as u128) - (low as u128);
                // Rejection sampling from 64 bits (span always fits u64 for
                // the workspace's types) to avoid modulo bias.
                let span64 = span as u64;
                let zone = u64::MAX - (u64::MAX.wrapping_sub(span64).wrapping_add(1)) % span64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low + (v % span64) as $t;
                    }
                }
            }
            fn max_value() -> Self { <$t>::MAX }
            fn saturating_succ(self) -> Self { self.saturating_add(1) }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high);
                let ulow = (low as $u).wrapping_sub(<$t>::MIN as $u);
                let uhigh = (high as $u).wrapping_sub(<$t>::MIN as $u);
                let v = <$u>::sample_half_open(rng, ulow, uhigh);
                v.wrapping_add(<$t>::MIN as $u) as $t
            }
            fn max_value() -> Self { <$t>::MAX }
            fn saturating_succ(self) -> Self { self.saturating_add(1) }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        if hi < T::max_value() {
            T::sample_half_open(rng, lo, hi.saturating_succ())
        } else if lo == hi {
            lo
        } else {
            // Full-width inclusive range: widen via rejection on the
            // half-open range, accepting hi directly half the time is
            // unnecessary for workspace use; just split the range.
            T::sample_half_open(rng, lo, hi)
        }
    }
}

/// Types `Rng::gen::<T>()` can produce.
pub trait SampleAll: Sized {
    /// Sample uniformly over the whole type.
    fn sample_all<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleAll for bool {
    fn sample_all<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_all {
    ($($t:ty),*) => {$(
        impl SampleAll for $t {
            fn sample_all<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_all!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(0..10_000_000);
            assert!(v < 10_000_000);
            let w: usize = rng.gen_range(0..200usize);
            assert!(w < 200);
            let x: u32 = rng.gen_range(1..3600);
            assert!((1..3600).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn covers_small_range_fully() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
