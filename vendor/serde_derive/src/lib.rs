//! Offline drop-in subset of `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. No `syn`/`quote` available offline, so the item is
//! parsed directly from the `proc_macro` token stream. Supported shapes —
//! the only ones the workspace derives on:
//!
//! * structs with named fields → JSON object
//! * enums with unit variants (→ `"Name"`) and struct variants
//!   (→ `{"Name": {fields...}}`), serde's externally-tagged default

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "fn to_value(&self) -> serde::Value {{\n\
                     let mut obj: Vec<(String, serde::Value)> = Vec::new();\n\
                     {pushes}\
                     serde::Value::Object(obj)\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => serde::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push(({f:?}.to_string(), serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner: Vec<(String, serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 serde::Value::Object(vec![({v:?}.to_string(), serde::Value::Object(inner))])\n\
                             }}\n",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "fn to_value(&self) -> serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                 }}"
            )
        }
    };
    wrap_impl(&item.name, "serde::Serialize", &body)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(v.field({f:?})?)?,\n"))
                .collect();
            format!(
                "fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name} {{\n{inits}}})\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!("({v:?}, None) => Ok({name}::{v}),\n", v = v.name),
                    Some(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(payload.field({f:?})?)?,\n"
                                )
                            })
                            .collect();
                        format!(
                            "({v:?}, Some(payload)) => Ok({name}::{v} {{\n{inits}}}),\n",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     match v.as_variant()? {{\n\
                         {arms}\
                         (other, _) => Err(serde::Error::msg(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }}\n\
                 }}"
            )
        }
    };
    wrap_impl(name, "serde::Deserialize", &body)
}

fn wrap_impl(name: &str, trait_path: &str, body: &str) -> TokenStream {
    let code = format!(
        "#[automatically_derived]\n\
         impl {trait_path} for {name} {{\n{body}\n}}"
    );
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code for {name}: {e}\n{code}"))
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named struct fields in declaration order.
    Struct(Vec<String>),
    /// Enum variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for a struct variant.
    fields: Option<Vec<String>>,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip attributes (#[...], including doc comments) and visibility.
    let mut kind = None;
    while let Some(tok) = toks.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, `pub(crate)` — keep scanning.
            }
            _ => {}
        }
    }
    let kind = kind.expect("serde_derive: expected `struct` or `enum`");
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    // Generic items aren't needed by the workspace and aren't supported.
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported (item `{name}`)")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing body for `{name}`"),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body))
    } else {
        Shape::Enum(parse_variants(body))
    };
    Item { name, shape }
}

/// Parse `name: Type, ...` out of a brace group, skipping attributes and
/// visibility. Only field *names* are needed — types are recovered by
/// inference in the generated code. Commas inside `<...>` (multi-parameter
/// generics) are not field separators, so angle depth is tracked.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Field prelude: attrs + visibility.
        let name = loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Possible `pub(crate)` group follows.
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other:?}"),
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to a top-level comma.
        let mut angle = 0i32;
        loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Parse enum variants: `Name` (unit) or `Name { fields }` (struct variant).
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        let name = loop {
            match toks.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("serde_derive: unexpected token in variants: {other:?}"),
            }
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                toks.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple variants are not supported (variant `{name}`)")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
    }
}
