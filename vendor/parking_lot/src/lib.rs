//! Offline drop-in subset of the `parking_lot` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `parking_lot` it actually uses: a
//! non-poisoning [`Mutex`] with `lock` and `try_lock`. The implementation
//! wraps `std::sync::Mutex` and swallows poison (matching parking_lot's
//! semantics, which has no poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard { inner: p.into_inner() },
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must fail try_lock");
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        assert_eq!(*m.lock(), 0);
    }
}
